package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "TEXT", KindBool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	ok := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"float": KindFloat, "REAL": KindFloat, "double": KindFloat,
		"text": KindString, "VARCHAR": KindString, " string ": KindString,
		"bool": KindBool, "BOOLEAN": KindBool, "null": KindNull,
	}
	for in, want := range ok {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if v.AsString() != "NULL" {
		t.Errorf("NULL renders as %q", v.AsString())
	}
}

func TestAsIntConversions(t *testing.T) {
	cases := []struct {
		in   Value
		want int64
		ok   bool
	}{
		{Int(42), 42, true},
		{Float(3.9), 3, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{Str("17"), 17, true},
		{Str("x"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, err := c.in.AsInt()
		if (err == nil) != c.ok {
			t.Errorf("AsInt(%v) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("AsInt(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAsFloatConversions(t *testing.T) {
	cases := []struct {
		in   Value
		want float64
		ok   bool
	}{
		{Int(2), 2, true},
		{Float(2.5), 2.5, true},
		{Str("2.5"), 2.5, true},
		{Bool(true), 1, true},
		{Str("NaNope"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, err := c.in.AsFloat()
		if (err == nil) != c.ok {
			t.Errorf("AsFloat(%v) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("AsFloat(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestAsBool(t *testing.T) {
	if Null().AsBool() {
		t.Error("NULL must not be true")
	}
	if !Int(1).AsBool() || Int(0).AsBool() {
		t.Error("int truthiness broken")
	}
	if !Str("x").AsBool() || Str("").AsBool() {
		t.Error("string truthiness broken")
	}
	if !Float(0.5).AsBool() || Float(0).AsBool() {
		t.Error("float truthiness broken")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(Int(2), Float(2.0))
	if err != nil || c != 0 {
		t.Errorf("2 vs 2.0: %d, %v", c, err)
	}
	c, err = Compare(Int(2), Float(2.5))
	if err != nil || c != -1 {
		t.Errorf("2 vs 2.5: %d, %v", c, err)
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, _ := Compare(Null(), Int(0)); c != -1 {
		t.Error("NULL must sort before values")
	}
	if c, _ := Compare(Int(0), Null()); c != 1 {
		t.Error("values must sort after NULL")
	}
	if c, _ := Compare(Null(), Null()); c != 0 {
		t.Error("NULL == NULL for ordering")
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(Str("a"), Bool(true)); err == nil {
		t.Error("string vs bool must error")
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("string vs int must error")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, err := Compare(Str("a"), Str("b")); err != nil || c != -1 {
		t.Errorf("a<b: %d %v", c, err)
	}
	if c, err := Compare(Bool(false), Bool(true)); err != nil || c != -1 {
		t.Errorf("false<true: %d %v", c, err)
	}
	if c, err := Compare(Bool(true), Bool(true)); err != nil || c != 0 {
		t.Errorf("true==true: %d %v", c, err)
	}
	if c, err := Compare(Bool(true), Bool(false)); err != nil || c != 1 {
		t.Errorf("true>false: %d %v", c, err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(3), Float(3)) {
		t.Error("3 == 3.0")
	}
	if Equal(Str("a"), Int(1)) {
		t.Error("incomparable values are not equal")
	}
	if !Equal(Null(), Null()) {
		t.Error("NULL key-equality used for grouping")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(Int(2), Int(3))); !Equal(got, Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(Int(2), Float(0.5))); !Equal(got, Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Add(Str("ab"), Str("cd"))); !Equal(got, Str("abcd")) {
		t.Errorf("concat = %v", got)
	}
	if got := mustV(Sub(Int(2), Int(5))); !Equal(got, Int(-3)) {
		t.Errorf("2-5 = %v", got)
	}
	if got := mustV(Mul(Float(1.5), Int(4))); !Equal(got, Float(6)) {
		t.Errorf("1.5*4 = %v", got)
	}
	if got := mustV(Div(Int(7), Int(2))); !Equal(got, Int(3)) {
		t.Errorf("7/2 = %v", got)
	}
	if got := mustV(Div(Float(7), Int(2))); !Equal(got, Float(3.5)) {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Mod(Int(7), Int(3))); !Equal(got, Int(1)) {
		t.Errorf("7%%3 = %v", got)
	}
	if got := mustV(Neg(Int(7))); !Equal(got, Int(-7)) {
		t.Errorf("-7 = %v", got)
	}
	if got := mustV(Neg(Float(1.5))); !Equal(got, Float(-1.5)) {
		t.Errorf("-1.5 = %v", got)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	ops := []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod}
	for i, op := range ops {
		v, err := op(Null(), Int(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op %d: NULL lhs -> %v, %v", i, v, err)
		}
		v, err = op(Int(1), Null())
		if err != nil || !v.IsNull() {
			t.Errorf("op %d: NULL rhs -> %v, %v", i, v, err)
		}
	}
	if v, err := Neg(Null()); err != nil || !v.IsNull() {
		t.Errorf("neg NULL -> %v, %v", v, err)
	}
}

func TestDivModByZero(t *testing.T) {
	if v, err := Div(Int(1), Int(0)); err != nil || !v.IsNull() {
		t.Errorf("1/0 = %v, %v; want NULL", v, err)
	}
	if v, err := Div(Float(1), Float(0)); err != nil || !v.IsNull() {
		t.Errorf("1.0/0.0 = %v, %v; want NULL", v, err)
	}
	if v, err := Mod(Int(1), Int(0)); err != nil || !v.IsNull() {
		t.Errorf("1%%0 = %v, %v; want NULL", v, err)
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("string+int must fail")
	}
	if _, err := Neg(Str("a")); err == nil {
		t.Error("-string must fail")
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	vals := []Value{Null(), Int(0), Int(1), Float(1.5), Str(""), Str("0"),
		Str("a"), Bool(true), Bool(false)}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v -> %q", prev, v, k)
		}
		seen[k] = v
	}
	// Numeric key equality across kinds is intentional.
	if Int(1).Key() != Float(1).Key() {
		t.Error("1 and 1.0 must share a grouping key")
	}
}

// Property: Compare is antisymmetric and reflexive over numeric values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		ab, err1 := Compare(va, vb)
		ba, err2 := Compare(vb, va)
		aa, err3 := Compare(va, va)
		return err1 == nil && err2 == nil && err3 == nil &&
			ab == -ba && aa == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub round trip for ints (modular arithmetic is fine).
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		s, err := Add(Int(a), Int(b))
		if err != nil {
			return false
		}
		d, err := Sub(s, Int(b))
		if err != nil {
			return false
		}
		return Equal(d, Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: float keys equal iff values equal (ignoring NaN).
func TestFloatKeyConsistency(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := Float(a).Key(), Float(b).Key()
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
