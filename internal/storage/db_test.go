package storage

import (
	"fmt"
	"sync"
	"testing"
)

func powerSchema() *Schema {
	return MustSchema(
		TableDef{Name: "Power", Columns: []Column{
			{Name: "cid", Kind: KindInt},
			{Name: "cons", Kind: KindFloat},
			{Name: "period", Kind: KindInt},
		}},
		TableDef{Name: "Consumer", Columns: []Column{
			{Name: "cid", Kind: KindInt},
			{Name: "district", Kind: KindString},
			{Name: "accommodation", Kind: KindString},
		}},
	)
}

func TestSchemaLookupCaseInsensitive(t *testing.T) {
	s := powerSchema()
	for _, name := range []string{"power", "POWER", "Power"} {
		if _, ok := s.Table(name); !ok {
			t.Errorf("Table(%q) not found", name)
		}
	}
	if _, ok := s.Table("nope"); ok {
		t.Error("unknown table must not resolve")
	}
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	s := NewSchema()
	def := TableDef{Name: "T", Columns: []Column{{Name: "a", Kind: KindInt}}}
	if err := s.AddTable(def); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(def); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := s.AddTable(TableDef{Name: "U", Columns: []Column{
		{Name: "a", Kind: KindInt}, {Name: "A", Kind: KindInt}}}); err == nil {
		t.Error("duplicate column must fail")
	}
	if err := s.AddTable(TableDef{Name: ""}); err == nil {
		t.Error("empty table name must fail")
	}
	if err := s.AddTable(TableDef{Name: "V", Columns: []Column{{Name: ""}}}); err == nil {
		t.Error("empty column name must fail")
	}
}

func TestSchemaTablesOrder(t *testing.T) {
	s := powerSchema()
	tabs := s.Tables()
	if len(tabs) != 2 || tabs[0].Name != "Power" || tabs[1].Name != "Consumer" {
		t.Errorf("Tables() order wrong: %v", tabs)
	}
}

func TestColumnIndex(t *testing.T) {
	s := powerSchema()
	p, _ := s.Table("Power")
	if p.ColumnIndex("CONS") != 1 {
		t.Error("case-insensitive column lookup broken")
	}
	if p.ColumnIndex("nope") != -1 {
		t.Error("missing column must be -1")
	}
}

func TestInsertAndScan(t *testing.T) {
	db := NewLocalDB(powerSchema())
	for i := 0; i < 5; i++ {
		err := db.Insert("Power", Row{Int(int64(i)), Float(float64(i) * 1.5), Int(1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if db.Count("Power") != 5 {
		t.Fatalf("count = %d", db.Count("Power"))
	}
	var sum float64
	if err := db.Scan("Power", func(r Row) bool {
		f, _ := r[1].AsFloat()
		sum += f
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 15 {
		t.Errorf("sum = %g, want 15", sum)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := NewLocalDB(powerSchema())
	for i := 0; i < 10; i++ {
		if err := db.Insert("Power", Row{Int(int64(i)), Float(1), Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := db.Scan("Power", func(Row) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan visited %d rows, want 3", n)
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewLocalDB(powerSchema())
	if err := db.Insert("Power", Row{Int(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := db.Insert("Power", Row{Str("x"), Float(1), Int(1)}); err == nil {
		t.Error("kind mismatch must fail")
	}
	if err := db.Insert("Nope", Row{Int(1)}); err == nil {
		t.Error("unknown table must fail")
	}
	// INT widens to FLOAT.
	if err := db.Insert("Power", Row{Int(1), Int(2), Int(3)}); err != nil {
		t.Errorf("int->float widening rejected: %v", err)
	}
	// NULL always accepted.
	if err := db.Insert("Power", Row{Null(), Null(), Null()}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
}

func TestInsertAllStopsAtFirstBad(t *testing.T) {
	db := NewLocalDB(powerSchema())
	rows := []Row{
		{Int(1), Float(1), Int(1)},
		{Str("bad"), Float(1), Int(1)},
		{Int(3), Float(1), Int(1)},
	}
	if err := db.InsertAll("Power", rows); err == nil {
		t.Fatal("bad batch must fail")
	}
	if db.Count("Power") != 1 {
		t.Errorf("count after failed batch = %d, want 1", db.Count("Power"))
	}
}

func TestRowsReturnsCopies(t *testing.T) {
	db := NewLocalDB(powerSchema())
	if err := db.Insert("Power", Row{Int(1), Float(1), Int(1)}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Rows("Power")
	if err != nil {
		t.Fatal(err)
	}
	rows[0][0] = Int(999)
	rows2, _ := db.Rows("Power")
	if v, _ := rows2[0][0].AsInt(); v != 1 {
		t.Error("Rows must return defensive copies")
	}
	if _, err := db.Rows("nope"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	db := NewLocalDB(powerSchema())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = db.Insert("Power", Row{Int(int64(w*100 + i)), Float(1), Int(1)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = db.Scan("Power", func(Row) bool { return true })
			}
		}()
	}
	wg.Wait()
	if db.Count("Power") != 800 {
		t.Errorf("count = %d, want 800", db.Count("Power"))
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema must panic on invalid input")
		}
	}()
	MustSchema(TableDef{Name: ""})
}

func TestValidateAgainstMessages(t *testing.T) {
	def := &TableDef{Name: "T", Columns: []Column{{Name: "a", Kind: KindInt}}}
	err := Row{Str("x")}.ValidateAgainst(def)
	if err == nil {
		t.Fatal("want error")
	}
	want := fmt.Sprintf("storage: column %q wants INT, got TEXT", "a")
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}
