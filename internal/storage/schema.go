package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table in the common schema.
type Column struct {
	Name string
	Kind Kind
}

// TableDef describes one table of the common schema shared by every TDS.
type TableDef struct {
	Name    string
	Columns []Column
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *TableDef) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Schema is the common relational schema, defined once by the application
// provider (energy distributor, health ministry, ...) and installed in every
// TDS (Section 2.1 of the paper).
type Schema struct {
	tables map[string]*TableDef
	order  []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: make(map[string]*TableDef)}
}

// AddTable registers a table definition. It returns an error when the name
// is already taken or a column is duplicated.
func (s *Schema) AddTable(def TableDef) error {
	key := strings.ToLower(def.Name)
	if key == "" {
		return fmt.Errorf("storage: empty table name")
	}
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("storage: table %q already defined", def.Name)
	}
	seen := make(map[string]bool, len(def.Columns))
	for _, c := range def.Columns {
		ck := strings.ToLower(c.Name)
		if ck == "" {
			return fmt.Errorf("storage: table %q has an unnamed column", def.Name)
		}
		if seen[ck] {
			return fmt.Errorf("storage: table %q duplicates column %q", def.Name, c.Name)
		}
		seen[ck] = true
	}
	cp := def
	cp.Columns = append([]Column(nil), def.Columns...)
	s.tables[key] = &cp
	s.order = append(s.order, key)
	return nil
}

// Table returns the definition of the named table (case-insensitive).
func (s *Schema) Table(name string) (*TableDef, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the table definitions in declaration order.
func (s *Schema) Tables() []*TableDef {
	out := make([]*TableDef, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// MustSchema builds a schema from table definitions, panicking on invalid
// input. Intended for tests, examples and generated workloads where the
// schema is a literal.
func MustSchema(defs ...TableDef) *Schema {
	s := NewSchema()
	for _, d := range defs {
		if err := s.AddTable(d); err != nil {
			panic(err)
		}
	}
	return s
}
