package figures

import (
	"strings"
	"testing"
)

func TestFig10AllPanels(t *testing.T) {
	panels := Fig10All()
	if len(panels) != 10 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, f := range panels {
		if len(f.Series) != 5 {
			t.Errorf("%s: series = %d, want 5 protocols", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) != len(s.Y) || len(s.X) == 0 {
				t.Errorf("%s/%s: malformed series", f.ID, s.Name)
			}
			for i, y := range s.Y {
				if y <= 0 {
					t.Errorf("%s/%s: non-positive value %g at x=%g", f.ID, s.Name, y, s.X[i])
				}
			}
		}
		r := f.Render()
		if !strings.Contains(r, f.Title) || !strings.Contains(r, "S_Agg") {
			t.Errorf("%s: render missing content:\n%s", f.ID, r)
		}
	}
}

func TestFig10UnknownPanel(t *testing.T) {
	if _, err := Fig10("z"); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestFig10aShape(t *testing.T) {
	f, _ := Fig10("a")
	var sagg, edh Series
	for _, s := range f.Series {
		switch s.Name {
		case "S_Agg":
			sagg = s
		case "ED_Hist":
			edh = s
		}
	}
	// S_Agg parallelism falls across the G sweep; ED_Hist's rises.
	if sagg.Y[len(sagg.Y)-1] >= sagg.Y[0] {
		t.Errorf("S_Agg P_TDS must fall with G: %v", sagg.Y)
	}
	if edh.Y[len(edh.Y)-1] <= edh.Y[0] {
		t.Errorf("ED_Hist P_TDS must rise with G: %v", edh.Y)
	}
}

func TestFig10iVsJElasticity(t *testing.T) {
	scarce, _ := Fig10("i")
	abundant, _ := Fig10("j")
	find := func(f Figure, name string) Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %s missing", name)
		return Series{}
	}
	// R1000 suffers badly under scarcity; S_Agg is identical in both.
	rS, rA := find(scarce, "R1000_Noise"), find(abundant, "R1000_Noise")
	if rS.Y[3] <= rA.Y[3] {
		t.Errorf("R1000 scarce %g <= abundant %g", rS.Y[3], rA.Y[3])
	}
	sS, sA := find(scarce, "S_Agg"), find(abundant, "S_Agg")
	for i := range sS.Y {
		if sS.Y[i] != sA.Y[i] {
			t.Errorf("S_Agg differs with availability at x=%g", sS.X[i])
		}
	}
}

func TestFig9bShape(t *testing.T) {
	b := Fig9b()
	if b.Transfer <= b.CPU || b.CPU <= b.Decrypt || b.Encrypt*5 >= b.Decrypt {
		t.Errorf("Fig 9b shape broken: %v", b)
	}
}

func TestFig7(t *testing.T) {
	rows := Fig7()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Epsilon != 1 {
		t.Errorf("plaintext Ԑ = %g", rows[0].Epsilon)
	}
	if !(rows[0].Epsilon > rows[1].Epsilon && rows[1].Epsilon > rows[2].Epsilon) {
		t.Errorf("ordering broken: %v", rows)
	}
	// Paper example values: Ԑ_Det = 8/15, Ԑ_nDet = 1/12.
	if d := rows[1].Epsilon - 8.0/15; d > 1e-12 || d < -1e-12 {
		t.Errorf("Ԑ_Det = %g", rows[1].Epsilon)
	}
	if d := rows[2].Epsilon - 1.0/12; d > 1e-12 || d < -1e-12 {
		t.Errorf("Ԑ_nDet = %g", rows[2].Epsilon)
	}
}

func TestFig8OrderingAndBounds(t *testing.T) {
	rows := Fig8(500, 100000, 7)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Protocol != "Cleartext" || rows[0].Epsilon != 1 {
		t.Errorf("first row = %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Epsilon > rows[i-1].Epsilon {
			t.Errorf("rows not sorted: %+v", rows)
		}
		if rows[i].Epsilon <= 0 || rows[i].Epsilon > 1 {
			t.Errorf("Ԑ out of range: %+v", rows[i])
		}
	}
	// The floor protocols end the ranking.
	last := rows[len(rows)-1].Protocol
	if last != "S_Agg" && last != "C_Noise" {
		t.Errorf("floor protocol = %s", last)
	}
}

func TestFig8HSweep(t *testing.T) {
	f := Fig8HSweep(200, 40000, 7)
	eps := f.Series[0]
	// Monotone non-increasing exposure as h grows; endpoints match the
	// Det_Enc maximum and the 1/N_d floor regime.
	for i := 1; i < len(eps.Y); i++ {
		if eps.Y[i] > eps.Y[i-1]+0.05 {
			t.Errorf("Ԑ rose with h: %v", eps.Y)
		}
	}
	if eps.Y[0] < 5*eps.Y[len(eps.Y)-1] {
		t.Errorf("h=1 exposure %g not far above h=G exposure %g",
			eps.Y[0], eps.Y[len(eps.Y)-1])
	}
	// T_Q grows with h (bigger buckets, less parallelism).
	tq := f.Series[1]
	if tq.Y[len(tq.Y)-1] <= tq.Y[0] {
		t.Errorf("T_Q must grow with h: %v", tq.Y)
	}
	if !strings.Contains(f.Render(), "collision factor") {
		t.Error("render broken")
	}
}

func TestFig8NfSweep(t *testing.T) {
	f := Fig8NfSweep(150, 20000, 3)
	eps, load := f.Series[0], f.Series[1]
	if eps.Y[len(eps.Y)-1] >= eps.Y[0] {
		t.Errorf("Ԑ must fall with n_f: %v", eps.Y)
	}
	for i := 1; i < len(load.Y); i++ {
		if load.Y[i] <= load.Y[i-1] {
			t.Errorf("load must climb with n_f: %v", load.Y)
		}
	}
}

func TestFig11Axes(t *testing.T) {
	axes := Fig11()
	if len(axes) != 6 {
		t.Fatalf("axes = %d", len(axes))
	}
	for _, a := range axes {
		if len(a.Order) < 5 {
			t.Errorf("axis %q lists %d protocols", a.Axis, len(a.Order))
		}
	}
	byAxis := func(name string) AxisRanking {
		for _, a := range axes {
			if strings.Contains(a.Axis, name) {
				return a
			}
		}
		t.Fatalf("axis %q missing", name)
		return AxisRanking{}
	}
	// Section 6.4 headline conclusions.
	feas := byAxis("Feasibility")
	if feas.Order[0] != "S_Agg" && feas.Order[0] != "R1000_Noise" {
		t.Errorf("feasibility worst = %s, paper says S_Agg/R1000", feas.Order[0])
	}
	if feas.Order[len(feas.Order)-1] != "ED_Hist" {
		t.Errorf("feasibility best = %s, paper says ED_Hist", feas.Order[len(feas.Order)-1])
	}
	respLarge := byAxis("large G")
	if respLarge.Order[0] != "S_Agg" {
		t.Errorf("responsiveness(large G) worst = %s, paper says S_Agg", respLarge.Order[0])
	}
	respSmall := byAxis("small G")
	if best := respSmall.Order[len(respSmall.Order)-1]; best != "S_Agg" {
		t.Errorf("responsiveness(small G) best = %s, paper says S_Agg", best)
	}
	load := byAxis("Global resource")
	if best := load.Order[len(load.Order)-1]; best != "S_Agg" {
		t.Errorf("global load best = %s, paper says S_Agg", best)
	}
	// C_Noise at G=1e5 generates n_f = G-1 ≈ 1e5 fakes per tuple, even
	// more than R1000 — either noise protocol legitimately ranks worst.
	if w := load.Order[0]; w != "R1000_Noise" && w != "C_Noise" {
		t.Errorf("global load worst = %s, paper says a noise protocol", w)
	}
	el := byAxis("Elasticity")
	if el.Order[0] != "S_Agg" {
		t.Errorf("elasticity worst = %s, paper says S_Agg", el.Order[0])
	}
	conf := byAxis("Confidentiality")
	if conf.Order[0] != "Cleartext" || conf.Order[len(conf.Order)-1] != "S_Agg" {
		t.Errorf("confidentiality axis = %v", conf.Order)
	}
}
