// Package figures regenerates every figure and table of the paper's
// evaluation (Sections 5 and 6) from this repository's implementations:
// the exposure analysis (Fig. 7, Fig. 8), the unit-test breakdown
// (Fig. 9b), the cost-model sweeps (Fig. 10a-j) and the qualitative
// comparison (Fig. 11). cmd/benchtool and the bench suite print these.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"github.com/trustedcells/tcq/internal/costmodel"
	"github.com/trustedcells/tcq/internal/exposure"
	"github.com/trustedcells/tcq/internal/histogram"
	"github.com/trustedcells/tcq/internal/netsim"
	"github.com/trustedcells/tcq/internal/workload"
)

// Series is one protocol's curve in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproducible plot, as data.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	Series []Series
}

// Render prints the figure as an aligned text table, one row per X value.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%16.6g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%s)\n", f.YLabel)
	return b.String()
}

// gSweep is the paper's G axis: 1, 10, ..., 10^6.
func gSweep() []float64 {
	out := make([]float64, 0, 7)
	for g := 1.0; g <= 1e6; g *= 10 {
		out = append(out, g)
	}
	return out
}

// ntSweep is the paper's N_t axis: 5M to 65M.
func ntSweep() []float64 {
	out := make([]float64, 0, 7)
	for nt := 5e6; nt <= 65e6; nt += 10e6 {
		out = append(out, nt)
	}
	return out
}

// metricOf extracts one metric as a float for plotting.
type metricOf func(costmodel.Metrics) float64

func ptds(m costmodel.Metrics) float64   { return m.PTDS }
func loadMB(m costmodel.Metrics) float64 { return m.LoadQ / 1e6 }
func tqSec(m costmodel.Metrics) float64  { return m.TQ.Seconds() }
func tlSec(m costmodel.Metrics) float64  { return m.TLocal.Seconds() }

// sweep builds the five protocol series over xs, mutating params via set.
func sweep(xs []float64, set func(*costmodel.Params, float64), get metricOf) []Series {
	names := costmodel.ProtocolNames()
	out := make([]Series, len(names))
	for i, n := range names {
		out[i] = Series{Name: n, X: xs, Y: make([]float64, len(xs))}
	}
	for xi, x := range xs {
		p := costmodel.Params{}
		set(&p, x)
		m := costmodel.Compare(p)
		for i, n := range names {
			out[i].Y[xi] = get(m[n])
		}
	}
	return out
}

func setG(p *costmodel.Params, g float64)   { p.G = g }
func setNt(p *costmodel.Params, nt float64) { p.Nt = nt }

// Fig10 regenerates one panel of Fig. 10 by its letter (a-j).
func Fig10(letter string) (Figure, error) {
	switch letter {
	case "a":
		return Figure{ID: "10a", Title: "parallelism vs number of groups",
			XLabel: "G", YLabel: "P_TDS (participating TDSs)", XLog: true,
			Series: sweep(gSweep(), setG, ptds)}, nil
	case "b":
		return Figure{ID: "10b", Title: "parallelism vs dataset size",
			XLabel: "N_t", YLabel: "P_TDS (participating TDSs)",
			Series: sweep(ntSweep(), setNt, ptds)}, nil
	case "c":
		return Figure{ID: "10c", Title: "global resource consumption vs G",
			XLabel: "G", YLabel: "Load_Q (MB)", XLog: true,
			Series: sweep(gSweep(), setG, loadMB)}, nil
	case "d":
		return Figure{ID: "10d", Title: "global resource consumption vs N_t",
			XLabel: "N_t", YLabel: "Load_Q (MB)",
			Series: sweep(ntSweep(), setNt, loadMB)}, nil
	case "e":
		return Figure{ID: "10e", Title: "response time vs G (10% TDS available)",
			XLabel: "G", YLabel: "T_Q (seconds)", XLog: true,
			Series: sweep(gSweep(), setG, tqSec)}, nil
	case "f":
		return Figure{ID: "10f", Title: "response time vs N_t",
			XLabel: "N_t", YLabel: "T_Q (seconds)",
			Series: sweep(ntSweep(), setNt, tqSec)}, nil
	case "g":
		return Figure{ID: "10g", Title: "local execution time vs G",
			XLabel: "G", YLabel: "T_local (seconds)", XLog: true,
			Series: sweep(gSweep(), setG, tlSec)}, nil
	case "h":
		return Figure{ID: "10h", Title: "local execution time vs N_t",
			XLabel: "N_t", YLabel: "T_local (seconds)",
			Series: sweep(ntSweep(), setNt, tlSec)}, nil
	case "i":
		return Figure{ID: "10i", Title: "response time vs G (scarce: 1% TDS available)",
			XLabel: "G", YLabel: "T_Q (seconds)", XLog: true,
			Series: sweep(gSweep(), func(p *costmodel.Params, g float64) {
				p.G = g
				p.Available = 0.01 * 1e6
			}, tqSec)}, nil
	case "j":
		return Figure{ID: "10j", Title: "response time vs G (abundant: 100% TDS available)",
			XLabel: "G", YLabel: "T_Q (seconds)", XLog: true,
			Series: sweep(gSweep(), func(p *costmodel.Params, g float64) {
				p.G = g
				p.Available = 1e6
			}, tqSec)}, nil
	default:
		return Figure{}, fmt.Errorf("figures: unknown Fig 10 panel %q (want a-j)", letter)
	}
}

// Fig10All returns every panel in order.
func Fig10All() []Figure {
	out := make([]Figure, 0, 10)
	for _, l := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		f, err := Fig10(l)
		if err != nil {
			panic(err)
		}
		out = append(out, f)
	}
	return out
}

// Fig9b reproduces the unit-test breakdown: internal time consumption of a
// TDS managing 4 KB partitions (transfer dominates; CPU > crypto;
// encryption << decryption).
func Fig9b() netsim.Breakdown {
	cal := netsim.DefaultCalibration()
	return cal.PartitionBreakdown(cal.PartitionSize, 64)
}

// Fig7Row is one line of the Fig. 7 IC-table comparison.
type Fig7Row struct {
	Scheme  string
	Epsilon float64
	Note    string
}

// Fig7 reproduces the Accounts example of Section 5: exposure of the same
// five-tuple table under each encryption scheme.
func Fig7() []Fig7Row {
	customers := exposure.Distribution{"Alice": 2, "Bob": 1, "Chris": 1, "Donna": 1}
	balances := exposure.Distribution{"200": 3, "100": 1, "300": 1}
	cols := []exposure.Distribution{customers, balances}
	rows := [][]string{
		{"Alice", "200"}, {"Alice", "200"}, {"Bob", "200"},
		{"Chris", "100"}, {"Donna", "300"},
	}
	return []Fig7Row{
		{"Plaintext", exposure.Plaintext(), "every association certain"},
		{"Det_Enc", exposure.Det(cols, rows), "<Alice,200> inferred with certainty"},
		{"nDet_Enc", exposure.NDet(cols), "uniform guessing: Π 1/N_j"},
	}
}

// Fig8Row is one protocol's exposure on the Zipf experiment.
type Fig8Row struct {
	Protocol string
	Epsilon  float64
}

// Fig8 reproduces the information-exposure comparison among protocols on a
// Zipf-distributed grouping attribute (g distinct values, n tuples).
func Fig8(g int, n int64, seed int64) []Fig8Row {
	counts := workload.ZipfCounts(g, n, 1.3, seed)
	d := exposure.Distribution(counts)
	cols := []exposure.Distribution{d}

	h5 := histogram.MustBuild(counts, maxInt(1, d.N()/5))
	bucketOf := make(map[string]string, d.N())
	for v := range d {
		id, _ := h5.BucketOf(v)
		bucketOf[v] = id
	}
	depths := make(map[string]int64, h5.NumBuckets())
	for _, b := range h5.Buckets() {
		depths[b.ID] = b.Depth
	}

	rows := []Fig8Row{
		{"Cleartext", exposure.Plaintext()},
		{"Det_Enc (R0_Noise)", exposure.DetColumn(d)},
		{"R2_Noise", exposure.RnfNoise(d, 2, seed)},
		{"R1000_Noise", exposure.RnfNoise(d, 1000, seed)},
		{"ED_Hist (h=5)", exposure.EDHist(d, bucketOf, depths)},
		{"C_Noise", exposure.CNoise(cols)},
		{"S_Agg", exposure.SAgg(cols)},
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Epsilon > rows[j].Epsilon })
	return rows
}

// Fig8HSweep reproduces the [11]-style experiment referenced in Section 5:
// vary the ED_Hist collision factor h = G/M on Zipf data and measure its
// exposure. Ԑ is maximal at h = 1 (degenerates to Det_Enc) and falls to
// the 1/N_d floor at h = G. The second series reports the cost-model T_Q
// at the same h — the privacy/performance trade-off in one plot.
func Fig8HSweep(g int, n int64, seed int64) Figure {
	counts := workload.ZipfCounts(g, n, 1.3, seed)
	d := exposure.Distribution(counts)
	hs := []float64{1, 2, 5, 10, 20, 50, float64(d.N())}
	eps := Series{Name: "Ԑ_ED_Hist", X: hs, Y: make([]float64, len(hs))}
	tq := Series{Name: "T_Q_seconds", X: hs, Y: make([]float64, len(hs))}
	for i, h := range hs {
		m := maxInt(1, int(float64(d.N())/h+0.5))
		hist := histogram.MustBuild(counts, m)
		bucketOf := make(map[string]string, d.N())
		for v := range d {
			id, _ := hist.BucketOf(v)
			bucketOf[v] = id
		}
		depths := make(map[string]int64, hist.NumBuckets())
		for _, b := range hist.Buckets() {
			depths[b.ID] = b.Depth
		}
		eps.Y[i] = exposure.EDHist(d, bucketOf, depths)
		tq.Y[i] = costmodel.EDHist(costmodel.Params{G: float64(g), H: h}).TQ.Seconds()
	}
	return Figure{
		ID:     "8h",
		Title:  fmt.Sprintf("ED_Hist exposure and T_Q vs collision factor h (Zipf, G=%d, n=%d)", g, n),
		XLabel: "h = G/M", YLabel: "Ԑ / seconds",
		Series: []Series{eps, tq},
	}
}

// Fig8NfSweep varies the Rnf_Noise fake ratio n_f on Zipf data: exposure
// falls with n_f while Load_Q climbs linearly — the trade-off the paper
// summarizes as "the bigger the nf, the lower the probability that these
// ciphertexts are revealed ... at the price of a very high number of fake
// tuples".
func Fig8NfSweep(g int, n int64, seed int64) Figure {
	d := exposure.Distribution(workload.ZipfCounts(g, n, 1.3, seed))
	nfs := []float64{0, 1, 2, 5, 10, 100, 1000}
	eps := Series{Name: "Ԑ_Rnf_Noise", X: nfs, Y: make([]float64, len(nfs))}
	load := Series{Name: "Load_Q_MB", X: nfs, Y: make([]float64, len(nfs))}
	for i, nf := range nfs {
		eps.Y[i] = exposure.RnfNoise(d, int(nf), seed)
		load.Y[i] = costmodel.RnfNoise(costmodel.Params{G: float64(g), Nf: nf}).LoadQ / 1e6
	}
	return Figure{
		ID:     "8nf",
		Title:  fmt.Sprintf("Rnf_Noise exposure and load vs n_f (Zipf, G=%d, n=%d)", g, n),
		XLabel: "n_f", YLabel: "Ԑ / MB",
		Series: []Series{eps, load},
	}
}

// AxisRanking is one axis of the Fig. 11 qualitative comparison: protocol
// names ordered worst to best, derived from the cost model and exposure
// analysis rather than hardcoded.
type AxisRanking struct {
	Axis  string
	Order []string // worst ... best
}

// Fig11 derives the six comparison axes at the paper's default point.
func Fig11() []AxisRanking {
	def := costmodel.Params{}
	largeG := costmodel.Params{G: 1e4}
	largeGLoad := costmodel.Params{G: 1e5}
	smallG := costmodel.Params{G: 4}

	rankBy := func(p costmodel.Params, worse func(a, b costmodel.Metrics) bool) []string {
		m := costmodel.Compare(p)
		names := append([]string(nil), costmodel.ProtocolNames()...)
		sort.SliceStable(names, func(i, j int) bool { return worse(m[names[i]], m[names[j]]) })
		return names
	}
	tlWorse := func(a, b costmodel.Metrics) bool { return a.TLocal > b.TLocal }
	tqWorse := func(a, b costmodel.Metrics) bool { return a.TQ > b.TQ }
	loadWorse := func(a, b costmodel.Metrics) bool { return a.LoadQ > b.LoadQ }

	// Elasticity: ratio of T_Q under scarcity to T_Q under abundance —
	// big ratio means the protocol exploits extra resources well (elastic);
	// ratio 1 means it cannot (S_Agg).
	elastic := func(name string) float64 {
		scarce, abundant := costmodel.Params{Available: 0.01 * 1e6}, costmodel.Params{Available: 1e6}
		return costmodel.Compare(scarce)[name].TQ.Seconds() /
			costmodel.Compare(abundant)[name].TQ.Seconds()
	}
	elNames := append([]string(nil), costmodel.ProtocolNames()...)
	sort.SliceStable(elNames, func(i, j int) bool { return elastic(elNames[i]) < elastic(elNames[j]) })

	// Confidentiality from the exposure analysis (worst = most exposed).
	conf := []string{"Cleartext", costmodel.NameR2Noise, costmodel.NameR1000Noise,
		costmodel.NameEDHist, costmodel.NameCNoise, costmodel.NameSAgg}

	return []AxisRanking{
		{Axis: "Feasibility / local resource consumption", Order: rankBy(def, tlWorse)},
		{Axis: "Responsiveness (large G)", Order: rankBy(largeG, tqWorse)},
		{Axis: "Responsiveness (small G)", Order: rankBy(smallG, tqWorse)},
		// The paper's load axis reflects the large-G regime, where the
		// histogram's two-step fan-out overtakes light random noise.
		{Axis: "Global resource consumption", Order: rankBy(largeGLoad, loadWorse)},
		{Axis: "Confidentiality", Order: conf},
		{Axis: "Elasticity", Order: elNames},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
