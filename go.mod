module github.com/trustedcells/tcq

go 1.22
