// Package tcq benchmarks regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) and add ablation
// benches for the design choices of §5. Run:
//
//	go test -bench=. -benchmem
//
// Figure benches report the headline series value via b.ReportMetric so
// `go test -bench` output doubles as the experiment record; cmd/benchtool
// prints the full tables.
package tcq

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/costmodel"
	"github.com/trustedcells/tcq/internal/exposure"
	"github.com/trustedcells/tcq/internal/figures"
	"github.com/trustedcells/tcq/internal/flashstore"
	"github.com/trustedcells/tcq/internal/netsim"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/storage"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/validate"
	"github.com/trustedcells/tcq/internal/workload"
)

// ---- Fig 7 / Fig 8: information exposure ----

func BenchmarkFig7ICTables(b *testing.B) {
	var eps float64
	for i := 0; i < b.N; i++ {
		rows := figures.Fig7()
		eps = rows[1].Epsilon
	}
	b.ReportMetric(eps, "Ԑ_Det")
}

func BenchmarkFig8Exposure(b *testing.B) {
	var floor float64
	for i := 0; i < b.N; i++ {
		rows := figures.Fig8(200, 20000, 7)
		floor = rows[len(rows)-1].Epsilon
	}
	b.ReportMetric(floor, "Ԑ_floor")
}

// ---- Fig 9b: unit test of the calibrated device ----

// BenchmarkFig9bUnitTest measures the real cryptographic work of one 4 KB
// partition (decrypt, then re-encrypt a 64-byte aggregate) and reports the
// calibrated board's simulated total next to it.
func BenchmarkFig9bUnitTest(b *testing.B) {
	cal := netsim.DefaultCalibration()
	suite := tdscrypto.MustSuite(tdscrypto.MustRandomKey())
	partition := make([]byte, cal.PartitionSize)
	ct, err := suite.NDetEncrypt(partition, nil)
	if err != nil {
		b.Fatal(err)
	}
	small := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := suite.Decrypt(ct, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := suite.NDetEncrypt(small, nil); err != nil {
			b.Fatal(err)
		}
		_ = pt
	}
	b.StopTimer()
	bd := figures.Fig9b()
	b.ReportMetric(bd.Total().Seconds()*1e3, "board_ms/partition")
	b.ReportMetric(bd.Transfer.Seconds()*1e3, "board_transfer_ms")
}

// ---- Fig 10a-j: cost-model sweeps ----

// fig10Bench regenerates one panel per iteration and reports the S_Agg and
// ED_Hist values at the panel's default x (G = 10^3 or N_t = 5e6).
func fig10Bench(b *testing.B, panel string) {
	var f figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig10(panel)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range f.Series {
		if s.Name == costmodel.NameSAgg || s.Name == costmodel.NameEDHist {
			b.ReportMetric(s.Y[3%len(s.Y)], s.Name)
		}
	}
}

func BenchmarkFig10aPTDSvsG(b *testing.B)       { fig10Bench(b, "a") }
func BenchmarkFig10bPTDSvsNt(b *testing.B)      { fig10Bench(b, "b") }
func BenchmarkFig10cLoadQvsG(b *testing.B)      { fig10Bench(b, "c") }
func BenchmarkFig10dLoadQvsNt(b *testing.B)     { fig10Bench(b, "d") }
func BenchmarkFig10eTQvsG(b *testing.B)         { fig10Bench(b, "e") }
func BenchmarkFig10fTQvsNt(b *testing.B)        { fig10Bench(b, "f") }
func BenchmarkFig10gTlocalvsG(b *testing.B)     { fig10Bench(b, "g") }
func BenchmarkFig10hTlocalvsNt(b *testing.B)    { fig10Bench(b, "h") }
func BenchmarkFig10iTQvsGScarce(b *testing.B)   { fig10Bench(b, "i") }
func BenchmarkFig10jTQvsGAbundant(b *testing.B) { fig10Bench(b, "j") }

// ---- Fig 11: qualitative ranking ----

func BenchmarkFig11Ranking(b *testing.B) {
	var axes []figures.AxisRanking
	for i := 0; i < b.N; i++ {
		axes = figures.Fig11()
	}
	b.ReportMetric(float64(len(axes)), "axes")
}

// ---- End-to-end protocol runs over a live goroutine fleet ----

type benchFixture struct {
	eng *core.Engine
	q   *querier.Querier
}

func newBenchFixture(b *testing.B, fleet int) *benchFixture {
	b.Helper()
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
		}},
		AuthorityKey:      tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
		MasterKey:         tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction: 0.5,
		Seed:              9,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
		b.Fatal(err)
	}
	cred := eng.Authority().Issue("edf", []string{"energy-analyst"},
		time.Unix(1700000000, 0).Add(24*time.Hour))
	q, err := querier.New("edf", eng.K1(), cred, eng.Schema())
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{eng: eng, q: q}
}

// benchExec is the bench-side spelling of the plain Execute shape.
func benchExec(eng *core.Engine, q *querier.Querier, sql string,
	kind protocol.Kind, params protocol.Params) (*core.Response, error) {
	return eng.Execute(context.Background(), core.Request{
		Querier: q, SQL: sql, Kind: kind, Params: params})
}

const benchSQL = `SELECT C.district, AVG(P.cons) FROM Power P, Consumer C ` +
	`WHERE C.cid = P.cid GROUP BY C.district`

func benchEndToEnd(b *testing.B, kind protocol.Kind, params protocol.Params) {
	f := newBenchFixture(b, 60)
	// Warm the discovery cache so tagged protocols measure the query, not
	// the one-time discovery.
	if _, err := benchExec(f.eng, f.q, benchSQL, protocol.KindSAgg, protocol.Params{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tq time.Duration
	for i := 0; i < b.N; i++ {
		resp, err := benchExec(f.eng, f.q, benchSQL, kind, params)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Result.Rows) == 0 {
			b.Fatal("empty result")
		}
		tq = resp.Metrics.TQ
	}
	b.ReportMetric(tq.Seconds()*1e3, "simulated_TQ_ms")
}

func BenchmarkEndToEndSAgg(b *testing.B) {
	benchEndToEnd(b, protocol.KindSAgg, protocol.Params{})
}

func BenchmarkEndToEndRnfNoise(b *testing.B) {
	benchEndToEnd(b, protocol.KindRnfNoise, protocol.Params{Nf: 2})
}

func BenchmarkEndToEndCNoise(b *testing.B) {
	benchEndToEnd(b, protocol.KindCNoise, protocol.Params{})
}

func BenchmarkEndToEndEDHist(b *testing.B) {
	benchEndToEnd(b, protocol.KindEDHist, protocol.Params{})
}

func BenchmarkEndToEndBasicSFW(b *testing.B) {
	f := newBenchFixture(b, 60)
	sql := `SELECT C.cid, C.district FROM Consumer C WHERE C.accommodation = 'flat'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchExec(f.eng, f.q, sql, protocol.KindBasic, protocol.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationAlphaSweep sweeps the S_Agg reduction factor around
// α_op = 3.6 in the cost model: T_Q must be minimal near the optimum.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	for _, alpha := range []float64{2, 3, 3.6, 4.5, 6} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			var m costmodel.Metrics
			for i := 0; i < b.N; i++ {
				m = costmodel.SAgg(costmodel.Params{Alpha: alpha})
			}
			b.ReportMetric(m.TQ.Seconds(), "TQ_s")
		})
	}
}

// BenchmarkAblationNoiseSweep sweeps n_f: exposure falls, load rises.
func BenchmarkAblationNoiseSweep(b *testing.B) {
	d := exposure.Distribution(workload.ZipfCounts(200, 20000, 1.3, 5))
	for _, nf := range []int{0, 2, 10, 100, 1000} {
		b.Run(fmt.Sprintf("nf=%d", nf), func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				eps = exposure.RnfNoise(d, nf, 5)
			}
			load := costmodel.RnfNoise(costmodel.Params{Nf: float64(nf)}).LoadQ
			b.ReportMetric(eps, "Ԑ")
			b.ReportMetric(load/1e6, "LoadQ_MB")
		})
	}
}

// BenchmarkAblationCollisionSweep sweeps the ED_Hist collision factor h:
// responsiveness degrades as h grows while exposure shrinks.
func BenchmarkAblationCollisionSweep(b *testing.B) {
	for _, h := range []float64{1, 2, 5, 20, 100} {
		b.Run(fmt.Sprintf("h=%g", h), func(b *testing.B) {
			var m costmodel.Metrics
			for i := 0; i < b.N; i++ {
				m = costmodel.EDHist(costmodel.Params{H: h})
			}
			b.ReportMetric(m.TQ.Seconds()*1e3, "TQ_ms")
		})
	}
}

// BenchmarkAblationEncModes compares the throughput of the two encryption
// schemes on wire-sized tuples: Det_Enc pays an extra HMAC per tuple.
func BenchmarkAblationEncModes(b *testing.B) {
	suite := tdscrypto.MustSuite(tdscrypto.MustRandomKey())
	msg := make([]byte, 16)
	b.Run("nDet_Enc", func(b *testing.B) {
		b.SetBytes(16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := suite.NDetEncrypt(msg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Det_Enc", func(b *testing.B) {
		b.SetBytes(16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := suite.DetEncrypt(msg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPartitionSize sweeps the streaming unit around the
// paper's 4 KB: the simulated per-partition breakdown stays
// transfer-dominated at every size.
func BenchmarkAblationPartitionSize(b *testing.B) {
	cal := netsim.DefaultCalibration()
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			var bd netsim.Breakdown
			for i := 0; i < b.N; i++ {
				bd = cal.PartitionBreakdown(size, 64)
			}
			b.ReportMetric(bd.Total().Seconds()*1e3, "board_ms")
			b.ReportMetric(bd.Transfer.Seconds()/bd.Total().Seconds(), "transfer_share")
		})
	}
}

// BenchmarkAblationAuditReplicas sweeps the compromised-TDS audit factor:
// correctness insurance priced in P_TDS and Load_Q (collection excluded).
func BenchmarkAblationAuditReplicas(b *testing.B) {
	for _, r := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas=%d", r), func(b *testing.B) {
			var fc costmodel.FullCost
			var err error
			for i := 0; i < b.N; i++ {
				fc, err = costmodel.Full(costmodel.NameSAgg, costmodel.Params{}, r)
				if err != nil {
					b.Fatal(err)
				}
			}
			t := fc.Total()
			b.ReportMetric(t.PTDS, "P_TDS")
			b.ReportMetric(t.LoadQ/1e6, "LoadQ_MB")
		})
	}
}

// BenchmarkEndToEndAudited runs the live audited protocol: three replicas
// per partition over a 20%-compromised fleet, still exact.
func BenchmarkEndToEndAudited(b *testing.B) {
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
		}},
		AuthorityKey:        tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
		MasterKey:           tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction:   0.5,
		AuditReplicas:       3,
		CompromisedFraction: 0.2,
		Seed:                9,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.ProvisionFleet(60, w.HouseholdDB); err != nil {
		b.Fatal(err)
	}
	cred := eng.Authority().Issue("edf", []string{"energy-analyst"},
		time.Unix(1700000000, 0).Add(24*time.Hour))
	q, err := querier.New("edf", eng.K1(), cred, eng.Schema())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var detections int
	for i := 0; i < b.N; i++ {
		resp, err := benchExec(eng, q, benchSQL, protocol.KindSAgg, protocol.Params{})
		if err != nil {
			b.Fatal(err)
		}
		detections = resp.Metrics.AuditDetections
	}
	b.ReportMetric(float64(detections), "detections")
}

// BenchmarkCrossValidation runs the model-vs-simulation agreement check.
func BenchmarkCrossValidation(b *testing.B) {
	agree := 0.0
	for i := 0; i < b.N; i++ {
		rep, err := validate.Run(100, 6, 7)
		if err != nil {
			b.Fatal(err)
		}
		if rep.LoadOrder.Agree {
			agree = 1
		}
	}
	b.ReportMetric(agree, "load_order_agreement")
}

// BenchmarkEnrollment measures the ECDH key-provisioning handshake of the
// open-context deployment (footnote 7).
func BenchmarkEnrollment(b *testing.B) {
	ring := tdscrypto.NewKeyAuthority(tdscrypto.DeriveKey(tdscrypto.Key{}, "m")).Ring()
	auth, err := tdscrypto.NewEnrollmentAuthority(ring)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := tdscrypto.NewDeviceEnrollment()
		if err != nil {
			b.Fatal(err)
		}
		wrapped, err := auth.WrapRing(dev.PublicKey())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.UnwrapRing(auth.PublicKey(), wrapped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlashstoreAppendReplay measures the protected mass storage area
// of Fig. 1: sealing one 100-record block to flash and verifying it back.
func BenchmarkFlashstoreAppendReplay(b *testing.B) {
	key := tdscrypto.DeriveKey(tdscrypto.Key{}, "flash-bench")
	records := make([]flashstore.Record, 100)
	for i := range records {
		records[i] = flashstore.Record{Table: "Power", Row: storage.Row{
			storage.Int(int64(i)), storage.Float(float64(i))}}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var flash bytes.Buffer
		st, err := flashstore.New(key, &flash)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Append(records); err != nil {
			b.Fatal(err)
		}
		n := 0
		if _, err := flashstore.Replay(key, bytes.NewReader(flash.Bytes()),
			func(flashstore.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 100 {
			b.Fatal("lost records")
		}
	}
}

// BenchmarkBroadcastRevocation measures key distribution to a 1024-device
// fleet with 16 revoked devices (NNL complete subtree).
func BenchmarkBroadcastRevocation(b *testing.B) {
	auth, err := tdscrypto.NewBroadcastAuthority(tdscrypto.DeriveKey(tdscrypto.Key{}, "bc"), 1024)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if err := auth.Revoke(s * 64); err != nil {
			b.Fatal(err)
		}
	}
	ring := tdscrypto.NewKeyAuthority(tdscrypto.DeriveKey(tdscrypto.Key{}, "m")).Ring()
	dk, err := auth.DeviceKeys(33)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var entries int
	for i := 0; i < b.N; i++ {
		msg, err := auth.BroadcastRing(ring)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dk.OpenRing(msg); err != nil {
			b.Fatal(err)
		}
		entries = len(msg.Entries)
	}
	b.ReportMetric(float64(entries), "cover_entries")
}

// ---- Fleet-scale memory model (DESIGN.md §10) ----

// benchProvisionFleet measures fleet enrollment and reports how much live
// heap one enrolled device costs, packed or eager. The sweep companion is
// `benchtool -fleet-sweep`, which records the same figure across orders of
// magnitude into BENCH_fleet.json.
func benchProvisionFleet(b *testing.B, packed bool) {
	const fleet = 10_000
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	var eng *core.Engine
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		eng, err = core.NewEngine(core.Config{
			Schema: w.Schema(),
			Policy: &accessctl.Policy{Rules: []accessctl.Rule{
				{Role: "energy-analyst", AggregateOnly: true},
			}},
			AuthorityKey: tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
			MasterKey:    tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
			Seed:         9,
			PackedFleet:  packed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// One fleet (the last) is still live; everything else is garbage.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if retained := int64(after.HeapAlloc) - int64(before.HeapAlloc); retained > 0 {
		b.ReportMetric(float64(retained)/fleet, "bytes/device")
	}
	runtime.KeepAlive(eng)
}

func BenchmarkProvisionFleetPacked(b *testing.B) { benchProvisionFleet(b, true) }
func BenchmarkProvisionFleetEager(b *testing.B)  { benchProvisionFleet(b, false) }

// BenchmarkPackedCollection runs one full collection wave over a packed
// 20k-device fleet: devices materialize per connection, deposit through
// the wave arena and slab, and are dropped again.
func BenchmarkPackedCollection(b *testing.B) {
	const fleet = 20_000
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
		}},
		AuthorityKey:      tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
		MasterKey:         tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction: 0.5,
		CollectWorkers:    1,
		Seed:              9,
		PackedFleet:       true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
		b.Fatal(err)
	}
	cred := eng.Authority().Issue("edf", []string{"energy-analyst"},
		time.Unix(1700000000, 0).Add(24*time.Hour))
	q, err := querier.New("edf", eng.K1(), cred, eng.Schema())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(ctx, core.Request{
			Querier: q, SQL: benchSQL, Kind: protocol.KindSAgg,
			CollectOnly: true, SkipVerify: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCryptoPartition4KB is the raw software analogue of the board's
// crypto co-processor cost on one 4 KB partition.
func BenchmarkCryptoPartition4KB(b *testing.B) {
	suite := tdscrypto.MustSuite(tdscrypto.MustRandomKey())
	ct, err := suite.NDetEncrypt(make([]byte, 4096), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Decrypt(ct, nil); err != nil {
			b.Fatal(err)
		}
	}
}
