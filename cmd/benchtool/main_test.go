package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var b strings.Builder
	if err := run("all", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 9b", "Fig 10a", "Fig 10j", "Fig 11",
		"S_Agg", "ED_Hist", "transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSinglePanels(t *testing.T) {
	for _, fig := range []string{"9b", "10", "10a", "10e", "10j", "11"} {
		var b strings.Builder
		if err := run(fig, &b); err != nil {
			t.Errorf("run(%q): %v", fig, err)
		}
		if b.Len() == 0 {
			t.Errorf("run(%q): empty output", fig)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run("nope", &b); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("10z", &b); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunSweepPanels(t *testing.T) {
	for _, fig := range []string{"8h", "8nf"} {
		var b strings.Builder
		if err := run2(fig, 1, 0, 0, 3, &b); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if !strings.Contains(b.String(), "Zipf") {
			t.Errorf("%s output: %s", fig, b.String())
		}
	}
}

func TestRunPhases(t *testing.T) {
	var b strings.Builder
	if err := run2("phases", 3, 0, 0, 0, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"collection", "aggregation", "filtering", "SSI storage"} {
		if !strings.Contains(out, want) {
			t.Errorf("phases output missing %q", want)
		}
	}
}

func TestRunValidate(t *testing.T) {
	var b strings.Builder
	if err := run2("validate", 1, 60, 5, 3, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cross-validation") {
		t.Errorf("validate output: %s", b.String())
	}
}

// TestBenchJSONPhasesAndDeltas runs the bench-json harness twice at a
// tiny scale: the written report must carry a per-phase simulated
// breakdown on the end-to-end record, and the second run must print
// deltas against the first — including "n/a" columns when the previous
// record has a zero baseline.
func TestBenchJSONPhasesAndDeltas(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_collection.json")
	var b strings.Builder
	if err := runBenchJSON(path, 20, 2, 1, "clean", &b); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	var phases []benchPhase
	for _, r := range report.Benchmarks {
		if strings.HasPrefix(r.Name, "end_to_end/") {
			phases = r.Phases
		}
	}
	if len(phases) == 0 {
		t.Fatalf("end_to_end record has no phase breakdown: %s", raw)
	}
	names := map[string]bool{}
	for _, ph := range phases {
		names[ph.Name] = true
		if ph.Units <= 0 {
			t.Errorf("phase %q reports %d units", ph.Name, ph.Units)
		}
	}
	if !names["filtering"] {
		t.Errorf("phase breakdown missing the filtering phase: %v", phases)
	}

	// Sabotage one baseline to zero: the delta for that row must print
	// n/a instead of dividing by zero.
	report.Benchmarks[0].NsPerOp = 0
	report.Benchmarks[0].AllocsPerOp = 0
	sab, _ := json.Marshal(report)
	if err := os.WriteFile(path, sab, 0o644); err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := runBenchJSON(path, 20, 2, 1, "clean", &b2); err != nil {
		t.Fatal(err)
	}
	out := b2.String()
	if !strings.Contains(out, "n/a") {
		t.Errorf("zero baseline printed no n/a:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Errorf("intact baselines printed no percentage deltas:\n%s", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("delta output still divides by zero:\n%s", out)
	}
}

func TestRun2FallsBackToFigures(t *testing.T) {
	var b strings.Builder
	if err := run2("9b", 1, 0, 0, 0, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig 9b") {
		t.Error("fallback broken")
	}
}
