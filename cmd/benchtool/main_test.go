package main

import (
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var b strings.Builder
	if err := run("all", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 9b", "Fig 10a", "Fig 10j", "Fig 11",
		"S_Agg", "ED_Hist", "transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSinglePanels(t *testing.T) {
	for _, fig := range []string{"9b", "10", "10a", "10e", "10j", "11"} {
		var b strings.Builder
		if err := run(fig, &b); err != nil {
			t.Errorf("run(%q): %v", fig, err)
		}
		if b.Len() == 0 {
			t.Errorf("run(%q): empty output", fig)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run("nope", &b); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("10z", &b); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunSweepPanels(t *testing.T) {
	for _, fig := range []string{"8h", "8nf"} {
		var b strings.Builder
		if err := run2(fig, 1, 0, 0, 3, &b); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if !strings.Contains(b.String(), "Zipf") {
			t.Errorf("%s output: %s", fig, b.String())
		}
	}
}

func TestRunPhases(t *testing.T) {
	var b strings.Builder
	if err := run2("phases", 3, 0, 0, 0, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"collection", "aggregation", "filtering", "SSI storage"} {
		if !strings.Contains(out, want) {
			t.Errorf("phases output missing %q", want)
		}
	}
}

func TestRunValidate(t *testing.T) {
	var b strings.Builder
	if err := run2("validate", 1, 60, 5, 3, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cross-validation") {
		t.Errorf("validate output: %s", b.String())
	}
}

func TestRun2FallsBackToFigures(t *testing.T) {
	var b strings.Builder
	if err := run2("9b", 1, 0, 0, 0, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig 9b") {
		t.Error("fallback broken")
	}
}
