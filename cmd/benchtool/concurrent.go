package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/obs"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/workload"
)

// The -concurrent-sweep mode measures the multi-tenant query server: Q
// identical verified queries submitted at once to one core.Server over
// one shared packed fleet, for each Q in -concurrent-queries. Reported
// per point: wall-clock throughput (queries/sec, a host-dependent
// number) and the exact p50/p99 of the per-query simulated latency
// (Metrics.TQ — host-independent, so its stability across Q is the
// determinism contract made visible: a query's simulated cost must not
// depend on what else is in flight).

// concurrentPoint is one sweep point of BENCH_concurrent.json.
type concurrentPoint struct {
	Queries       int     `json:"queries"`
	MaxInFlight   int     `json:"max_inflight"`
	WallMs        float64 `json:"wall_ms"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SimP50Ms      float64 `json:"sim_p50_ms"`
	SimP99Ms      float64 `json:"sim_p99_ms"`
	// Tenants breaks the point down per querier: the sweep splits its
	// queries across two tenants, and the server's per-tenant accounting
	// (simulated latency, wall-clock queue wait) lands here.
	Tenants []tenantPoint `json:"tenants,omitempty"`
}

// tenantPoint is one tenant's share of a sweep point. Simulated latency
// is host-independent; queue wait is wall-clock, like wall_ms.
type tenantPoint struct {
	Querier        string  `json:"querier"`
	Completed      int64   `json:"completed"`
	SimP50Ms       float64 `json:"sim_p50_ms"`
	SimP99Ms       float64 `json:"sim_p99_ms"`
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
}

// concurrentReport is the file layout of BENCH_concurrent.json.
type concurrentReport struct {
	Tool       string            `json:"tool"`
	GoMaxProcs int               `json:"go_max_procs"`
	Fleet      int               `json:"fleet"`
	Sweep      []concurrentPoint `json:"sweep"`
}

// runConcurrentSweep measures Server throughput and simulated latency
// across the -concurrent-queries points and writes the report to path.
func runConcurrentSweep(path, sizes string, fleet, inflight int, out io.Writer) error {
	if fleet < 1 {
		return fmt.Errorf("-concurrent-fleet must be >= 1 (got %d)", fleet)
	}
	if inflight <= 0 {
		inflight = runtime.GOMAXPROCS(0)
	}
	var points []int
	for _, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("-concurrent-queries: bad count %q", f)
		}
		points = append(points, n)
	}

	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
		}},
		AuthorityKey:      tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
		MasterKey:         tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction: 0.5,
		PackedFleet:       true, // exercises the server's shared device cache
		Seed:              9,
	})
	if err != nil {
		return err
	}
	if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
		return err
	}
	// Two tenants share the fleet, as in the multi-querier deployment the
	// server exists for; the sweep alternates queries between them.
	expiry := time.Unix(1700000000, 0).Add(24 * time.Hour)
	tenants := make([]*querier.Querier, 0, 2)
	for _, id := range []string{"edf", "engie"} {
		cred := eng.Authority().Issue(id, []string{"energy-analyst"}, expiry)
		q, err := querier.New(id, eng.K1(), cred, eng.Schema())
		if err != nil {
			return err
		}
		tenants = append(tenants, q)
	}

	report := concurrentReport{
		Tool:       "benchtool -concurrent-sweep",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Fleet:      fleet,
	}
	ctx := context.Background()
	for _, n := range points {
		srv := core.NewServer(eng, core.ServerConfig{MaxInFlight: inflight, QueueDepth: n})
		latencies := make([]float64, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := srv.Submit(ctx, core.Request{
					Querier: tenants[i%len(tenants)], SQL: benchJSONSQL,
					Kind:    protocol.KindSAgg,
					QueryID: fmt.Sprintf("sweep-%d-%03d", n, i),
				})
				if err != nil {
					errs[i] = err
					return
				}
				latencies[i] = resp.Metrics.TQ.Seconds() * 1e3
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		stats := srv.TenantStats()
		srv.Close()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("Q=%d: %w", n, err)
			}
		}
		pt := concurrentPoint{
			Queries:       n,
			MaxInFlight:   inflight,
			WallMs:        float64(wall.Nanoseconds()) / 1e6,
			QueriesPerSec: float64(n) / wall.Seconds(),
			SimP50Ms:      obs.Quantile(latencies, 0.50),
			SimP99Ms:      obs.Quantile(latencies, 0.99),
		}
		for _, ts := range stats {
			pt.Tenants = append(pt.Tenants, tenantPoint{
				Querier:        ts.Querier,
				Completed:      ts.Completed,
				SimP50Ms:       float64(ts.SimTQP50.Nanoseconds()) / 1e6,
				SimP99Ms:       float64(ts.SimTQP99.Nanoseconds()) / 1e6,
				QueueWaitP50Ms: float64(ts.QueueWaitP50.Nanoseconds()) / 1e6,
				QueueWaitP99Ms: float64(ts.QueueWaitP99.Nanoseconds()) / 1e6,
			})
		}
		report.Sweep = append(report.Sweep, pt)
		fmt.Fprintf(out, "Q=%-4d inflight=%-3d %8.1f q/s   sim p50 %7.2fms  p99 %7.2fms   wall %v\n",
			pt.Queries, pt.MaxInFlight, pt.QueriesPerSec, pt.SimP50Ms, pt.SimP99Ms,
			wall.Round(time.Millisecond))
		for _, tp := range pt.Tenants {
			fmt.Fprintf(out, "  tenant %-8s %4d done   sim p50 %7.2fms  p99 %7.2fms   queue wait p50 %7.2fms  p99 %7.2fms\n",
				tp.Querier, tp.Completed, tp.SimP50Ms, tp.SimP99Ms,
				tp.QueueWaitP50Ms, tp.QueueWaitP99Ms)
		}
	}

	printConcurrentDeltas(path, report, out)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// printConcurrentDeltas renders new-vs-old per sweep point (and per
// tenant within it) when a previous report exists at path. Deltas fall
// back to "n/a" when the previous value is zero or the point is new —
// the first run after adding a column has no baseline.
func printConcurrentDeltas(path string, report concurrentReport, out io.Writer) {
	old, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var prev concurrentReport
	if json.Unmarshal(old, &prev) != nil {
		return
	}
	prevBy := make(map[int]concurrentPoint, len(prev.Sweep))
	for _, p := range prev.Sweep {
		prevBy[p.Queries] = p
	}
	for _, pt := range report.Sweep {
		p, ok := prevBy[pt.Queries]
		if !ok {
			continue
		}
		fmt.Fprintf(out, "Q=%-4d sim p50 %7.2fms -> %7.2fms (%s)   q/s %8.1f -> %8.1f (%s)\n",
			pt.Queries, p.SimP50Ms, pt.SimP50Ms, pctDelta(p.SimP50Ms, pt.SimP50Ms),
			p.QueriesPerSec, pt.QueriesPerSec, pctDelta(p.QueriesPerSec, pt.QueriesPerSec))
		prevTenant := make(map[string]tenantPoint, len(p.Tenants))
		for _, tp := range p.Tenants {
			prevTenant[tp.Querier] = tp
		}
		for _, tp := range pt.Tenants {
			pp, ok := prevTenant[tp.Querier]
			if !ok {
				fmt.Fprintf(out, "  tenant %-8s sim p50 %7.2fms (n/a)   queue wait p50 %7.2fms (n/a)\n",
					tp.Querier, tp.SimP50Ms, tp.QueueWaitP50Ms)
				continue
			}
			fmt.Fprintf(out, "  tenant %-8s sim p50 %7.2fms -> %7.2fms (%s)   queue wait p50 %7.2fms -> %7.2fms (%s)\n",
				tp.Querier, pp.SimP50Ms, tp.SimP50Ms, pctDelta(pp.SimP50Ms, tp.SimP50Ms),
				pp.QueueWaitP50Ms, tp.QueueWaitP50Ms, pctDelta(pp.QueueWaitP50Ms, tp.QueueWaitP50Ms))
		}
	}
}
