package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/faultplan"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/workload"
)

// The -bench-json mode is a benchmark-regression harness: it measures the
// live collection pipeline and one full aggregation protocol in-process
// (ns/op, allocs/op, B/op) and writes the results as JSON. Committing the
// file alongside perf-sensitive changes turns `git diff` into the
// regression report; when a previous file exists the tool also prints the
// deltas.

// benchRecord is one measured benchmark.
type benchRecord struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// BytesPerDevice divides the record's heap footprint across the fleet
	// — the scale axis of the -fleet-sweep mode. Zero elsewhere.
	BytesPerDevice float64 `json:"bytes_per_device,omitempty"`
	// Phases breaks the end-to-end record down by protocol phase in
	// simulated time — the paper's cost axis, independent of the host.
	Phases []benchPhase `json:"phases,omitempty"`
}

// benchPhase is one phase's simulated cost: makespan in simulated ns,
// partitions processed (replicas included) and ciphertext bytes moved.
type benchPhase struct {
	Name  string `json:"name"`
	SimNs int64  `json:"sim_ns"`
	Units int    `json:"units"`
	Bytes int64  `json:"bytes"`
}

// benchReport is the file layout of BENCH_collection.json.
type benchReport struct {
	Tool           string        `json:"tool"`
	GoMaxProcs     int           `json:"go_max_procs"`
	CollectWorkers int           `json:"collect_workers"`
	Fleet          int           `json:"fleet"`
	Benchmarks     []benchRecord `json:"benchmarks"`
}

// measure runs fn iters times and reports wall time and heap allocations
// per iteration.
func measure(name string, iters int, fn func() error) (benchRecord, error) {
	if err := fn(); err != nil { // warm caches outside the measured window
		return benchRecord{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return benchRecord{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return benchRecord{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

const benchJSONSQL = `SELECT C.district, AVG(P.cons) FROM Power P, Consumer C ` +
	`WHERE C.cid = P.cid GROUP BY C.district`

// benchChurnPlan scripts the churn-enabled collection benchmark: a fixed
// fault seed so the record is comparable across runs.
func benchChurnPlan() *faultplan.Plan {
	return &faultplan.Plan{
		Seed:            17,
		OfflineFraction: 0.10,
		DropFraction:    0.05,
		CorruptFraction: 0.05,
		CrashFraction:   0.10,
	}
}

// runBenchJSON measures the collection phase (sequential and parallel,
// clean and churn-scripted per scenario) and one end-to-end aggregation
// protocol, writes path, and prints deltas against any previous file at
// the same path.
func runBenchJSON(path string, fleet, workers, iters int, scenario string, out io.Writer) error {
	if iters < 1 {
		return fmt.Errorf("-bench-iters must be >= 1 (got %d)", iters)
	}
	if fleet < 1 {
		return fmt.Errorf("-bench-fleet must be >= 1 (got %d)", fleet)
	}
	wantClean, wantChurn := true, true
	switch scenario {
	case "both", "":
	case "clean":
		wantChurn = false
	case "churn":
		wantClean = false
	default:
		return fmt.Errorf("-bench-scenario must be clean, churn or both (got %q)", scenario)
	}
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	newEngine := func(collectWorkers int) (*core.Engine, *querier.Querier, error) {
		eng, err := core.NewEngine(core.Config{
			Schema: w.Schema(),
			Policy: &accessctl.Policy{Rules: []accessctl.Rule{
				{Role: "energy-analyst", AggregateOnly: true},
			}},
			AuthorityKey:      tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
			MasterKey:         tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
			AvailableFraction: 0.5,
			CollectWorkers:    collectWorkers,
			Seed:              9,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
			return nil, nil, err
		}
		cred := eng.Authority().Issue("edf", []string{"energy-analyst"},
			time.Unix(1700000000, 0).Add(24*time.Hour))
		q, err := querier.New("edf", eng.K1(), cred, eng.Schema())
		if err != nil {
			return nil, nil, err
		}
		return eng, q, nil
	}

	report := benchReport{
		Tool:           "benchtool -bench-json",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		CollectWorkers: workers,
		Fleet:          fleet,
	}
	seqEng, seqQ, err := newEngine(1)
	if err != nil {
		return err
	}
	parEng, parQ, err := newEngine(workers)
	if err != nil {
		return err
	}
	ctx := context.Background()
	collect := func(eng *core.Engine, q *querier.Querier, plan *faultplan.Plan) func() error {
		return func() error {
			// SkipVerify isolates the protocol's cost from the commitment
			// checks; the verified path has its own tests and its own flag.
			_, err := eng.Execute(ctx, core.Request{
				Querier: q, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
				Faults: plan, CollectOnly: true, SkipVerify: true,
			})
			return err
		}
	}
	type spec struct {
		name string
		fn   func() error
	}
	var specs []spec
	if wantClean {
		specs = append(specs, spec{
			fmt.Sprintf("collection/S_Agg/fleet=%d/workers=1", fleet),
			collect(seqEng, seqQ, nil)})
		if workers > 1 {
			specs = append(specs, spec{
				fmt.Sprintf("collection/S_Agg/fleet=%d/workers=%d", fleet, workers),
				collect(parEng, parQ, nil)})
		}
	}
	if wantChurn {
		specs = append(specs, spec{
			fmt.Sprintf("collection_churn/S_Agg/fleet=%d/workers=%d", fleet, workers),
			collect(parEng, parQ, benchChurnPlan())})
	}
	endToEnd := fmt.Sprintf("end_to_end/S_Agg/fleet=%d/workers=%d", fleet, workers)
	var lastResp *core.Response
	specs = append(specs, spec{
		endToEnd, func() error {
			resp, err := parEng.Execute(ctx, core.Request{
				Querier: parQ, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
				SkipVerify: true,
			})
			if err == nil && len(resp.Result.Rows) == 0 {
				return fmt.Errorf("empty result")
			}
			lastResp = resp
			return err
		}})
	for _, s := range specs {
		rec, err := measure(s.name, iters, s.fn)
		if err != nil {
			return err
		}
		if s.name == endToEnd && lastResp != nil {
			// Attach the per-phase simulated breakdown from the last run;
			// the phases are deterministic, so any iteration is the record.
			for _, ph := range lastResp.Metrics.Phases {
				rec.Phases = append(rec.Phases, benchPhase{
					Name: ph.Name, SimNs: ph.Duration.Nanoseconds(),
					Units: ph.Units, Bytes: ph.Bytes,
				})
			}
		}
		report.Benchmarks = append(report.Benchmarks, rec)
	}

	printDeltas(path, report, out)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// printDeltas renders new-vs-old per benchmark when a previous report
// exists at path.
func printDeltas(path string, report benchReport, out io.Writer) {
	old, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var prev benchReport
	if json.Unmarshal(old, &prev) != nil {
		return
	}
	prevBy := make(map[string]benchRecord, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		prevBy[r.Name] = r
	}
	for _, r := range report.Benchmarks {
		p, ok := prevBy[r.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(out, "%-48s %8.2fms -> %8.2fms (%s)   %8.0f -> %8.0f allocs/op (%s)\n",
			r.Name, p.NsPerOp/1e6, r.NsPerOp/1e6, pctDelta(p.NsPerOp, r.NsPerOp),
			p.AllocsPerOp, r.AllocsPerOp, pctDelta(p.AllocsPerOp, r.AllocsPerOp))
		if r.BytesPerDevice > 0 {
			fmt.Fprintf(out, "%-48s %8.1f -> %8.1f B/device (%s)\n",
				"", p.BytesPerDevice, r.BytesPerDevice, pctDelta(p.BytesPerDevice, r.BytesPerDevice))
		}
	}
}

// pctDelta renders the relative change, or "n/a" when the previous value
// is zero — a fresh or truncated record has no meaningful baseline, and
// dividing by it would print ±Inf.
func pctDelta(prev, cur float64) string {
	if prev == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-prev)/prev)
}
