package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/faultplan"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
)

// The -rotation-scenario mode records what a live key rotation costs the
// collection phase at fleet scale: one packed fleet, one collection pass
// with no lifecycle activity, and one pass during which a scripted
// rotation begins mid-walk and rolls out in staged waves. Both records
// land in BENCH_fleet.json next to the fleet-sweep numbers — the
// baseline reuses the sweep's record name so a previous file yields a
// direct delta, and fresh records print "n/a" rather than a bogus
// percentage.

// rotationWaveCount is the staged-rollout width of the recorded scenario.
const rotationWaveCount = 3

// benchRotationPlan scripts the recorded rotation: begin a quarter of the
// way through the deposit walk, advance one wave every further eighth.
// Commit-count triggers keep the record comparable across hosts.
func benchRotationPlan(fleet int) *faultplan.Plan {
	return &faultplan.Plan{
		Seed: 29,
		Rotation: &faultplan.RotationScript{
			AfterDeposits: fleet / 4,
			Waves:         rotationWaveCount,
			WaveEvery:     fleet / 8,
		},
	}
}

// runRotationScenario measures the two collection passes and merges the
// records into any existing report at path, so the rotation numbers ride
// alongside the fleet sweep's instead of replacing them.
func runRotationScenario(path string, fleet, iters int, out io.Writer) error {
	if iters < 1 {
		return fmt.Errorf("-fleet-iters must be >= 1 (got %d)", iters)
	}
	if fleet < 8 {
		return fmt.Errorf("-rotation-fleet must be >= 8 (got %d)", fleet)
	}
	eng, q, err := fleetEngine(fleet, true, 1)
	if err != nil {
		return err
	}
	ctx := context.Background()

	report := benchReport{
		Tool:           "benchtool -rotation-scenario",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		CollectWorkers: 1,
		Fleet:          fleet,
	}

	// Baseline: the fleet sweep's collection record, re-measured, so the
	// committed file keeps one comparable pair.
	base, err := measure(fmt.Sprintf("collection_packed/S_Agg/fleet=%d/workers=1", fleet),
		iters, func() error {
			_, err := eng.Execute(ctx, core.Request{
				Querier: q, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
				CollectOnly: true, SkipVerify: true,
			})
			return err
		})
	if err != nil {
		return err
	}
	base.BytesPerDevice = base.BytesPerOp / float64(fleet)
	fmt.Fprintf(out, "fleet=%-8d collect:          %8.2fms  %10.0f allocs/op\n",
		fleet, base.NsPerOp/1e6, base.AllocsPerOp)
	report.Benchmarks = append(report.Benchmarks, base)

	// Rotating: every iteration posts at the current epoch, rotates the
	// whole fleet one epoch mid-walk, and closes the grace window before
	// the next — so each pass pays a full begin/rollout/complete cycle.
	cred := eng.Authority().Issue("edf-rot", []string{"energy-analyst"},
		time.Unix(1700000000, 0).Add(24*time.Hour))
	plan := benchRotationPlan(fleet)
	rot, err := measure(
		fmt.Sprintf("collection_rotating/S_Agg/fleet=%d/waves=%d/workers=1", fleet, rotationWaveCount),
		iters, func() error {
			rq, err := querier.New("edf-rot", eng.K1(), cred, eng.Schema())
			if err != nil {
				return err
			}
			if _, err := eng.Execute(ctx, core.Request{
				Querier: rq, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
				Faults: plan, CollectOnly: true, SkipVerify: true,
			}); err != nil {
				return err
			}
			return eng.CompleteRotation()
		})
	if err != nil {
		return err
	}
	rot.BytesPerDevice = rot.BytesPerOp / float64(fleet)
	fmt.Fprintf(out, "fleet=%-8d collect+rotation: %8.2fms  %10.0f allocs/op  (%s vs clean)\n",
		fleet, rot.NsPerOp/1e6, rot.AllocsPerOp, pctDelta(base.NsPerOp, rot.NsPerOp))
	report.Benchmarks = append(report.Benchmarks, rot)

	printDeltas(path, report, out)

	merged := mergeReport(path, report)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// mergeReport folds the new records into any existing report at path:
// records with the same name are replaced in place, new ones appended, and
// every other record (the fleet sweep's) is kept. A missing or unreadable
// previous file yields the new report alone.
func mergeReport(path string, report benchReport) benchReport {
	old, err := os.ReadFile(path)
	if err != nil {
		return report
	}
	var prev benchReport
	if json.Unmarshal(old, &prev) != nil {
		return report
	}
	replaced := make(map[string]benchRecord, len(report.Benchmarks))
	for _, r := range report.Benchmarks {
		replaced[r.Name] = r
	}
	merged := prev
	merged.Benchmarks = nil
	for _, r := range prev.Benchmarks {
		if nr, ok := replaced[r.Name]; ok {
			merged.Benchmarks = append(merged.Benchmarks, nr)
			delete(replaced, r.Name)
		} else {
			merged.Benchmarks = append(merged.Benchmarks, r)
		}
	}
	for _, r := range report.Benchmarks {
		if _, ok := replaced[r.Name]; ok {
			merged.Benchmarks = append(merged.Benchmarks, r)
		}
	}
	return merged
}
