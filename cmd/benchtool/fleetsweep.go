package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/workload"
)

// The -fleet-sweep mode is the scale-regression harness behind the packed
// fleet: it provisions packed fleets across orders of magnitude, measures
// enrollment heap (bytes per device) and a full collection pass at each
// size, and records one eager (packed-off) baseline so the packed-vs-eager
// memory ratio is pinned in the committed file. An optional budget turns
// the bytes-per-device figure into a CI gate.

// parseFleetSizes reads the comma-separated -fleet-sizes list.
func parseFleetSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-fleet-sizes: bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-fleet-sizes: empty list")
	}
	return sizes, nil
}

// eagerBaselineFleet is the packed-off comparison point. Eager fleets burn
// kilobytes per device, so the baseline is taken at the mid size rather
// than at a million devices.
const eagerBaselineFleet = 100_000

// fleetEngine provisions one smart-meter fleet and a credentialed querier.
func fleetEngine(fleet int, packed bool, workers int) (*core.Engine, *querier.Querier, error) {
	w := workload.DefaultSmartMeter(9)
	w.Districts = 10
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
		}},
		AuthorityKey:      tdscrypto.DeriveKey(tdscrypto.Key{}, "auth"),
		MasterKey:         tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction: 0.5,
		CollectWorkers:    workers,
		Seed:              9,
		PackedFleet:       packed,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
		return nil, nil, err
	}
	cred := eng.Authority().Issue("edf", []string{"energy-analyst"},
		time.Unix(1700000000, 0).Add(24*time.Hour))
	q, err := querier.New("edf", eng.K1(), cred, eng.Schema())
	if err != nil {
		return nil, nil, err
	}
	return eng, q, nil
}

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureProvision builds one fleet and reports the enrollment cost, with
// the retained live heap attributed per device.
func measureProvision(name string, fleet int, packed bool) (benchRecord, *core.Engine, *querier.Querier, error) {
	base := liveHeap()
	start := time.Now()
	eng, q, err := fleetEngine(fleet, packed, 1)
	if err != nil {
		return benchRecord{}, nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	retained := int64(liveHeap()) - int64(base)
	if retained < 0 {
		retained = 0
	}
	return benchRecord{
		Name:           name,
		Iters:          1,
		NsPerOp:        float64(elapsed.Nanoseconds()),
		BytesPerOp:     float64(retained),
		BytesPerDevice: float64(retained) / float64(fleet),
	}, eng, q, nil
}

// runFleetSweep measures packed provisioning and collection at each fleet
// size, pins the eager baseline, writes path, prints deltas against any
// previous record at the same path, and enforces the bytes-per-device
// budget when one is set.
func runFleetSweep(path, sizesCSV string, iters int, budget float64, out io.Writer) error {
	if iters < 1 {
		return fmt.Errorf("-fleet-iters must be >= 1 (got %d)", iters)
	}
	sizes, err := parseFleetSizes(sizesCSV)
	if err != nil {
		return err
	}
	report := benchReport{
		Tool:       "benchtool -fleet-sweep",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		// The sweep pins CollectWorkers=1: scale behavior, not parallelism,
		// is what this record tracks.
		CollectWorkers: 1,
		Fleet:          sizes[len(sizes)-1],
	}
	ctx := context.Background()
	var packedBaseline float64 // bytes/device at eagerBaselineFleet, packed

	for _, fleet := range sizes {
		prov, eng, q, err := measureProvision(
			fmt.Sprintf("provision_packed/fleet=%d", fleet), fleet, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fleet=%-8d provision: %8.2fms  %10.0f B retained  %7.1f B/device\n",
			fleet, prov.NsPerOp/1e6, prov.BytesPerOp, prov.BytesPerDevice)
		report.Benchmarks = append(report.Benchmarks, prov)
		if fleet == eagerBaselineFleet {
			packedBaseline = prov.BytesPerDevice
		}

		rec, err := measure(fmt.Sprintf("collection_packed/S_Agg/fleet=%d/workers=1", fleet),
			iters, func() error {
				_, err := eng.Execute(ctx, core.Request{
					Querier: q, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
					CollectOnly: true, SkipVerify: true,
				})
				return err
			})
		if err != nil {
			return err
		}
		rec.BytesPerDevice = rec.BytesPerOp / float64(fleet)
		fmt.Fprintf(out, "fleet=%-8d collect:   %8.2fms  %10.0f allocs/op  %7.1f B/device/op\n",
			fleet, rec.NsPerOp/1e6, rec.AllocsPerOp, rec.BytesPerDevice)
		report.Benchmarks = append(report.Benchmarks, rec)

		if budget > 0 && prov.BytesPerDevice > budget {
			printDeltas(path, report, out)
			return fmt.Errorf("fleet=%d retains %.1f B/device, over the %.1f B/device budget",
				fleet, prov.BytesPerDevice, budget)
		}
	}

	// Packed-off baseline: the same workload provisioned eagerly, so the
	// committed file carries the ratio the packed representation buys.
	base, _, _, err := measureProvision(
		fmt.Sprintf("provision_eager/fleet=%d", eagerBaselineFleet), eagerBaselineFleet, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet=%-8d eager:     %8.2fms  %10.0f B retained  %7.1f B/device\n",
		eagerBaselineFleet, base.NsPerOp/1e6, base.BytesPerOp, base.BytesPerDevice)
	report.Benchmarks = append(report.Benchmarks, base)
	if packedBaseline > 0 {
		fmt.Fprintf(out, "packed vs eager at fleet=%d: %.1fx less heap per device\n",
			eagerBaselineFleet, base.BytesPerDevice/packedBaseline)
	}

	printDeltas(path, report, out)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
