// Command benchtool regenerates the figures of the paper's evaluation
// section from this repository's cost model, calibration and exposure
// analysis.
//
// Usage:
//
//	benchtool -fig 9b        # unit-test partition breakdown
//	benchtool -fig 10a       # one Fig 10 panel (a-j)
//	benchtool -fig 10        # all Fig 10 panels
//	benchtool -fig 11        # qualitative comparison axes
//	benchtool -fig all       # everything
//	benchtool -bench-json    # measure the live collection pipeline and
//	                         # write BENCH_collection.json (regression record)
//	benchtool -concurrent-sweep
//	                         # measure the multi-tenant query server and
//	                         # write BENCH_concurrent.json
//	benchtool -pipeline-compare
//	                         # measure barrier vs pipelined end-to-end
//	                         # execution and merge into BENCH_collection.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"github.com/trustedcells/tcq/internal/costmodel"
	"github.com/trustedcells/tcq/internal/figures"
	"github.com/trustedcells/tcq/internal/validate"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8h, 8nf, 9b, 10, 10a..10j, 11, phases, validate, all")
	replicas := flag.Int("audit", 1, "phases: audit replication factor")
	fleet := flag.Int("fleet", 150, "validate: live fleet size")
	groups := flag.Int("groups", 10, "validate: number of districts (G)")
	seed := flag.Int64("seed", 7, "validate: RNG seed")
	benchJSON := flag.Bool("bench-json", false, "measure the live collection pipeline and write -bench-out")
	benchOut := flag.String("bench-out", "BENCH_collection.json", "bench-json: output file")
	benchFleet := flag.Int("bench-fleet", 200, "bench-json: fleet size")
	benchWorkers := flag.Int("bench-workers", 0, "bench-json: CollectWorkers (0 = GOMAXPROCS)")
	benchIters := flag.Int("bench-iters", 20, "bench-json: iterations per benchmark")
	benchScenario := flag.String("bench-scenario", "both", "bench-json: clean | churn | both")
	fleetSweep := flag.Bool("fleet-sweep", false, "measure packed fleets across -fleet-sizes and write -fleet-out")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "fleet-sweep: output file")
	fleetSizes := flag.String("fleet-sizes", "1000,100000,1000000", "fleet-sweep: comma-separated fleet sizes")
	fleetIters := flag.Int("fleet-iters", 1, "fleet-sweep: collection iterations per fleet size")
	fleetBudget := flag.Float64("fleet-budget", 0, "fleet-sweep: fail if packed provisioning exceeds this many bytes/device (0 = no gate)")
	concurrentSweep := flag.Bool("concurrent-sweep", false, "measure the multi-tenant query server across -concurrent-queries and write -concurrent-out")
	concurrentOut := flag.String("concurrent-out", "BENCH_concurrent.json", "concurrent-sweep: output file")
	concurrentFleet := flag.Int("concurrent-fleet", 200, "concurrent-sweep: fleet size")
	concurrentQueries := flag.String("concurrent-queries", "1,16,256", "concurrent-sweep: comma-separated in-flight query counts")
	concurrentInflight := flag.Int("concurrent-inflight", 0, "concurrent-sweep: Server MaxInFlight (0 = GOMAXPROCS)")
	rotationScenario := flag.Bool("rotation-scenario", false, "measure a collection pass with a live mid-query key rotation and merge the records into -fleet-out")
	rotationFleet := flag.Int("rotation-fleet", 100000, "rotation-scenario: packed fleet size")
	pipelineCompare := flag.Bool("pipeline-compare", false, "measure barrier vs pipelined end-to-end execution across -pipeline-fleets and merge the records into -bench-out")
	pipelineFleets := flag.String("pipeline-fleets", "1000,100000", "pipeline-compare: comma-separated fleet sizes")
	flag.Parse()
	if *pipelineCompare {
		if err := runPipelineCompare(*benchOut, *pipelineFleets, *benchWorkers, *benchIters, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtool:", err)
			os.Exit(1)
		}
		return
	}
	if *rotationScenario {
		if err := runRotationScenario(*fleetOut, *rotationFleet, *fleetIters, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtool:", err)
			os.Exit(1)
		}
		return
	}
	if *concurrentSweep {
		if err := runConcurrentSweep(*concurrentOut, *concurrentQueries, *concurrentFleet, *concurrentInflight, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtool:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetSweep {
		if err := runFleetSweep(*fleetOut, *fleetSizes, *fleetIters, *fleetBudget, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtool:", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON {
		workers := *benchWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if err := runBenchJSON(*benchOut, *benchFleet, workers, *benchIters, *benchScenario, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtool:", err)
			os.Exit(1)
		}
		return
	}
	if err := run2(*fig, *replicas, *fleet, *groups, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtool:", err)
		os.Exit(1)
	}
}

// run2 dispatches the extended modes before falling back to the figure
// modes of run.
func run2(fig string, replicas, fleet, groups int, seed int64, out io.Writer) error {
	switch fig {
	case "8h":
		fmt.Fprint(out, figures.Fig8HSweep(200, 40000, seed).Render())
		return nil
	case "8nf":
		fmt.Fprint(out, figures.Fig8NfSweep(150, 20000, seed).Render())
		return nil
	case "phases":
		fmt.Fprintf(out, "Per-phase cost decomposition (audit replicas = %d)\n", replicas)
		for _, fc := range costmodel.FullAll(costmodel.Params{}, replicas) {
			fmt.Fprint(out, fc.String())
		}
		return nil
	case "validate":
		rep, err := validate.Run(fleet, groups, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.String())
		return nil
	default:
		return run(fig, out)
	}
}

func run(fig string, out io.Writer) error {
	switch {
	case fig == "all":
		print9b(out)
		printFig10All(out)
		print11(out)
		return nil
	case fig == "9b":
		print9b(out)
		return nil
	case fig == "10":
		printFig10All(out)
		return nil
	case strings.HasPrefix(fig, "10"):
		f, err := figures.Fig10(strings.TrimPrefix(fig, "10"))
		if err != nil {
			return err
		}
		fmt.Fprint(out, f.Render())
		return nil
	case fig == "11":
		print11(out)
		return nil
	default:
		return fmt.Errorf("unknown figure %q (want 9b, 10, 10a..10j, 11, all)", fig)
	}
}

func print9b(out io.Writer) {
	b := figures.Fig9b()
	fmt.Fprintln(out, "Fig 9b — internal time consumption, 4 KB partition (calibrated unit test)")
	fmt.Fprintf(out, "  transfer : %v\n", b.Transfer)
	fmt.Fprintf(out, "  CPU      : %v\n", b.CPU)
	fmt.Fprintf(out, "  decrypt  : %v\n", b.Decrypt)
	fmt.Fprintf(out, "  encrypt  : %v\n", b.Encrypt)
	fmt.Fprintf(out, "  total    : %v\n\n", b.Total())
}

func printFig10All(out io.Writer) {
	for _, f := range figures.Fig10All() {
		fmt.Fprintln(out, f.Render())
	}
}

func print11(out io.Writer) {
	fmt.Fprintln(out, "Fig 11 — qualitative comparison (worst ... best), derived from the model")
	for _, a := range figures.Fig11() {
		fmt.Fprintf(out, "  %-44s %s\n", a.Axis+":", strings.Join(a.Order, "  "))
	}
	fmt.Fprintln(out)
}
