package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/protocol"
)

// The -pipeline-compare mode records what the streaming pipeline buys (or
// costs) end to end: one full S_Agg query per fleet size, barrier-mode and
// pipelined, on packed fleets. Both records merge into BENCH_collection.json
// next to the -bench-json numbers, and every printed delta goes through the
// n/a guard — on a single-core host the overlap is bookkeeping-bound and
// the honest number is "about the same", not a synthetic win. The conformance
// check rides along: the pipelined run's measured/predicted T_Q ratio must
// stay inside the regression band, same as check.sh's gate.

// pipelineRatioLo/Hi is the conformance band of the pipelined record,
// mirroring TestPipelineConformanceBand.
const (
	pipelineRatioLo = 0.25
	pipelineRatioHi = 5.0
)

// runPipelineCompare measures barrier vs pipelined execution per fleet size
// and merges the records into the report at path.
func runPipelineCompare(path, sizesCSV string, workers, iters int, out io.Writer) error {
	if iters < 1 {
		return fmt.Errorf("-bench-iters must be >= 1 (got %d)", iters)
	}
	sizes, err := parseFleetSizes(sizesCSV)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		Tool:           "benchtool -pipeline-compare",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		CollectWorkers: workers,
		Fleet:          sizes[len(sizes)-1],
	}
	ctx := context.Background()
	for _, fleet := range sizes {
		eng, q, err := fleetEngine(fleet, true, workers)
		if err != nil {
			return err
		}
		run := func(mode core.PipelineMode) (*core.Response, error) {
			return eng.Execute(ctx, core.Request{
				Querier: q, SQL: benchJSONSQL, Kind: protocol.KindSAgg,
				SkipVerify: true, Pipeline: mode,
			})
		}
		barrier, err := measure(
			fmt.Sprintf("e2e_barrier/S_Agg/fleet=%d/workers=%d", fleet, workers),
			iters, func() error {
				_, err := run(core.PipelineOff)
				return err
			})
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, barrier)

		var last *core.Response
		piped, err := measure(
			fmt.Sprintf("e2e_pipelined/S_Agg/fleet=%d/workers=%d", fleet, workers),
			iters, func() error {
				resp, err := run(core.PipelineFull)
				last = resp
				return err
			})
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, piped)

		fmt.Fprintf(out, "fleet=%-8d barrier:   %10.2fms  %12.0f allocs/op\n",
			fleet, barrier.NsPerOp/1e6, barrier.AllocsPerOp)
		fmt.Fprintf(out, "fleet=%-8d pipelined: %10.2fms  %12.0f allocs/op  (%s vs barrier)\n",
			fleet, piped.NsPerOp/1e6, piped.AllocsPerOp, pctDelta(barrier.NsPerOp, piped.NsPerOp))
		if p := last.Pipeline; p != nil {
			fmt.Fprintf(out, "fleet=%-8d            speculated=%d adopted=%d wasted=%d\n",
				fleet, p.Speculated, p.Adopted, p.Wasted)
		}
		if c := last.Conformance; c != nil {
			fmt.Fprintf(out, "fleet=%-8d            tq_ratio=%.3f overlap=%v (predicted collection %v)\n",
				fleet, c.Ratio, c.PipelineOverlap, c.PredictedCollection)
			if c.Ratio < pipelineRatioLo || c.Ratio > pipelineRatioHi {
				return fmt.Errorf("pipelined tq_ratio %.3f outside [%g, %g] at fleet=%d",
					c.Ratio, pipelineRatioLo, pipelineRatioHi, fleet)
			}
		}
	}

	printDeltas(path, report, out)

	merged := mergeReport(path, report)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
