// Command exposure reproduces the information-exposure analysis of
// Section 5: the Fig. 7 Accounts example and the Fig. 8 protocol
// comparison on Zipf-distributed data.
//
// Usage:
//
//	exposure -fig 7
//	exposure -fig 8 [-groups 500] [-tuples 100000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/trustedcells/tcq/internal/figures"
)

func main() {
	fig := flag.String("fig", "8", "figure to reproduce: 7 or 8")
	groups := flag.Int("groups", 500, "Fig 8: number of distinct A_G values")
	tuples := flag.Int64("tuples", 100000, "Fig 8: number of true tuples")
	seed := flag.Int64("seed", 7, "Fig 8: RNG seed")
	flag.Parse()
	if err := run(*fig, *groups, *tuples, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exposure:", err)
		os.Exit(1)
	}
}

func run(fig string, groups int, tuples, seed int64, out io.Writer) error {
	switch fig {
	case "7":
		fmt.Fprintln(out, "Fig 7 — IC-table exposure of the Accounts example (after [12])")
		for _, r := range figures.Fig7() {
			fmt.Fprintf(out, "  %-10s Ԑ = %.6f   %s\n", r.Scheme, r.Epsilon, r.Note)
		}
		return nil
	case "8":
		if groups < 2 || tuples < 1 {
			return fmt.Errorf("fig 8 wants groups >= 2 and tuples >= 1")
		}
		fmt.Fprintf(out, "Fig 8 — information exposure among protocols (Zipf, G=%d, n=%d)\n", groups, tuples)
		for _, r := range figures.Fig8(groups, tuples, seed) {
			fmt.Fprintf(out, "  %-20s Ԑ = %.6f\n", r.Protocol, r.Epsilon)
		}
		fmt.Fprintln(out, "  (worst — most exposed — first; S_Agg/C_Noise sit at the Π 1/N_j floor)")
		return nil
	default:
		return fmt.Errorf("unknown figure %q (want 7 or 8)", fig)
	}
}
