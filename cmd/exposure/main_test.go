package main

import (
	"strings"
	"testing"
)

func TestRunFig7(t *testing.T) {
	var b strings.Builder
	if err := run("7", 0, 0, 0, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 7", "Det_Enc", "nDet_Enc", "Plaintext"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunFig8(t *testing.T) {
	var b strings.Builder
	if err := run("8", 100, 5000, 3, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 8", "S_Agg", "C_Noise", "R1000_Noise", "Cleartext"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := run("9", 0, 0, 0, &b); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("8", 1, 5, 0, &b); err == nil {
		t.Error("degenerate parameters accepted")
	}
}
