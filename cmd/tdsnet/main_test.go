package main

import "testing"

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"basic", "s_agg", "rnf_noise", "c_noise", "ed_hist"} {
		query := defaultQuery
		if proto == "basic" {
			query = `SELECT C.cid, C.district FROM Consumer C WHERE C.accommodation = 'flat'`
		}
		if err := run(40, proto, query, 2, 0, 0.5, 0, 7); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

func TestRunWithFailures(t *testing.T) {
	if err := run(30, "s_agg", defaultQuery, 0, 0, 0.5, 0.2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestParseProtocol(t *testing.T) {
	ok := map[string]string{
		"basic": "Basic", "S_AGG": "S_Agg", "sagg": "S_Agg",
		"rnf": "Rnf_Noise", "cnoise": "C_Noise", "hist": "ED_Hist",
	}
	for in, want := range ok {
		k, err := parseProtocol(in)
		if err != nil || k.String() != want {
			t.Errorf("parseProtocol(%q) = %v, %v", in, k, err)
		}
	}
	if _, err := parseProtocol("nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(10, "nope", defaultQuery, 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run(10, "s_agg", "not sql", 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad query accepted")
	}
}

func TestRunWithChurn(t *testing.T) {
	o := options{
		fleet: 40, protoName: "s_agg", query: defaultQuery,
		available: 0.5, audit: 1, seed: 7,
		churnOffline: 0.15, churnDrop: 0.1, churnCorrupt: 0.1,
		churnCrash: 0.2, faultSeed: 21,
	}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanOnlyWhenScripted(t *testing.T) {
	if (options{}).faultPlan() != nil {
		t.Error("zero options grew a fault plan")
	}
	p := (options{churnDrop: 0.2, faultSeed: 5}).faultPlan()
	if p == nil || p.DropFraction != 0.2 || p.Seed != 5 {
		t.Errorf("fault plan = %+v", p)
	}
	if (options{coverageFloor: 0.5}).faultPlan() == nil {
		t.Error("coverage floor alone should still build a plan")
	}
}
