package main

import "testing"

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"basic", "s_agg", "rnf_noise", "c_noise", "ed_hist"} {
		query := defaultQuery
		if proto == "basic" {
			query = `SELECT C.cid, C.district FROM Consumer C WHERE C.accommodation = 'flat'`
		}
		if err := run(40, proto, query, 2, 0, 0.5, 0, 7); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

func TestRunWithFailures(t *testing.T) {
	if err := run(30, "s_agg", defaultQuery, 0, 0, 0.5, 0.2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestParseProtocol(t *testing.T) {
	ok := map[string]string{
		"basic": "Basic", "S_AGG": "S_Agg", "sagg": "S_Agg",
		"rnf": "Rnf_Noise", "cnoise": "C_Noise", "hist": "ED_Hist",
	}
	for in, want := range ok {
		k, err := parseProtocol(in)
		if err != nil || k.String() != want {
			t.Errorf("parseProtocol(%q) = %v, %v", in, k, err)
		}
	}
	if _, err := parseProtocol("nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(10, "nope", defaultQuery, 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run(10, "s_agg", "not sql", 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad query accepted")
	}
}
