package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trustedcells/tcq/internal/obs"
)

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"basic", "s_agg", "rnf_noise", "c_noise", "ed_hist"} {
		query := defaultQuery
		if proto == "basic" {
			query = `SELECT C.cid, C.district FROM Consumer C WHERE C.accommodation = 'flat'`
		}
		if err := run(40, proto, query, 2, 0, 0.5, 0, 7); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

func TestRunWithFailures(t *testing.T) {
	if err := run(30, "s_agg", defaultQuery, 0, 0, 0.5, 0.2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestParseProtocol(t *testing.T) {
	ok := map[string]string{
		"basic": "Basic", "S_AGG": "S_Agg", "sagg": "S_Agg",
		"rnf": "Rnf_Noise", "cnoise": "C_Noise", "hist": "ED_Hist",
	}
	for in, want := range ok {
		k, err := parseProtocol(in)
		if err != nil || k.String() != want {
			t.Errorf("parseProtocol(%q) = %v, %v", in, k, err)
		}
	}
	if _, err := parseProtocol("nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(10, "nope", defaultQuery, 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run(10, "s_agg", "not sql", 0, 0, 0.5, 0, 1); err == nil {
		t.Error("bad query accepted")
	}
}

func TestRunWithChurn(t *testing.T) {
	o := options{
		fleet: 40, protoName: "s_agg", query: defaultQuery,
		available: 0.5, audit: 1, seed: 7,
		churnOffline: 0.15, churnDrop: 0.1, churnCorrupt: 0.1,
		churnCrash: 0.2, faultSeed: 21,
	}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityExports runs a churned query with -trace-out and
// -metrics-out targets and validates both artifacts: the trace file is
// line-delimited JSON covering every phase, the metrics file parses as
// Prometheus text.
func TestObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.jsonl")
	metricsFile := filepath.Join(dir, "metrics.prom")
	journalFile := filepath.Join(dir, "journal.jsonl")
	o := options{
		fleet: 40, protoName: "s_agg", query: defaultQuery,
		available: 0.5, audit: 1, seed: 7,
		churnOffline: 0.1, churnDrop: 0.1, churnCrash: 0.2, faultSeed: 21,
		traceOut: traceFile, metricsOut: metricsFile, traceSummary: true,
		journalOut: journalFile,
	}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if n, ok := rec["name"].(string); ok {
			names[n] = true
		}
	}
	if lines < 10 {
		t.Fatalf("trace has only %d lines; expected a full span tree", lines)
	}
	for _, want := range []string{"execute", "collect", "deliver", "deposit"} {
		if !names[want] {
			t.Errorf("trace is missing %q records (have %v)", want, names)
		}
	}

	mf, err := os.Open(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := obs.CheckText(mf); err != nil {
		t.Fatalf("metrics file fails the Prometheus checker: %v", err)
	}
	mraw, _ := os.ReadFile(metricsFile)
	if !strings.Contains(string(mraw), "tcq_queries_total") {
		t.Error("metrics file missing tcq_queries_total")
	}

	jf, err := os.Open(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if err := obs.CheckJournal(jf); err != nil {
		t.Fatalf("journal file fails the schema checker: %v", err)
	}
	jraw, _ := os.ReadFile(journalFile)
	for _, want := range []string{`"kind":"query-start"`, `"kind":"phase-end"`, `"kind":"query-end"`} {
		if !strings.Contains(string(jraw), want) {
			t.Errorf("journal file missing %s events", want)
		}
	}
}

// TestJournalExportSampledFleet: a 0<rate<1 trace sample still exports a
// complete, schema-valid journal (sampling bounds traces, never the
// journal), and the conformance report reaches the run summary.
func TestJournalExportSampledFleet(t *testing.T) {
	dir := t.TempDir()
	journalFile := filepath.Join(dir, "journal.jsonl")
	o := options{
		fleet: 60, protoName: "s_agg", query: defaultQuery,
		available: 0.5, audit: 1, seed: 7, traceSample: 0.1,
		journalOut: journalFile,
	}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if err := obs.CheckJournal(jf); err != nil {
		t.Fatalf("sampled run's journal fails the schema checker: %v", err)
	}
}

func TestFaultPlanOnlyWhenScripted(t *testing.T) {
	if p, err := (options{}).faultPlan(); err != nil || p != nil {
		t.Errorf("zero options grew a fault plan: %+v (err %v)", p, err)
	}
	p, err := (options{churnDrop: 0.2, faultSeed: 5}).faultPlan()
	if err != nil || p == nil || p.DropFraction != 0.2 || p.Seed != 5 {
		t.Errorf("fault plan = %+v (err %v)", p, err)
	}
	if p, err := (options{coverageFloor: 0.5}).faultPlan(); err != nil || p == nil {
		t.Errorf("coverage floor alone should still build a plan (err %v)", err)
	}
	p, err = (options{ssiAdversary: "drop-tuple, forge-coverage", ssiPersistent: true}).faultPlan()
	if err != nil || p == nil || p.SSI == nil || len(p.SSI.Behaviors) != 2 || !p.SSI.Persistent {
		t.Errorf("SSI script alone should build a plan: %+v (err %v)", p, err)
	}
	if _, err := (options{ssiAdversary: "melt-datacenter"}).faultPlan(); err == nil {
		t.Error("unknown misbehavior name was accepted")
	}
}
