// Command tdsnet runs a privacy-preserving query end-to-end over an
// in-process fleet of Trusted Data Servers: collection, aggregation and
// filtering phases through an honest-but-curious SSI, with simulated-time
// metrics from the calibrated hardware model.
//
// Usage:
//
//	tdsnet -fleet 200 -protocol s_agg \
//	   -query "SELECT C.district, AVG(P.cons) FROM Power P, Consumer C
//	           WHERE C.cid = P.cid GROUP BY C.district"
//
// Protocols: basic, s_agg, rnf_noise, c_noise, ed_hist.
//
// The -churn-* flags script deterministic fleet churn (seeded by
// -fault-seed): offline windows, deposits dropped mid-transfer, corrupted
// uploads, slow devices and crash-before-commit during the aggregation
// phases. The run then reports its coverage ratio and recovery account.
//
// The -rotate-every/-revoke-ids flags exercise the live key lifecycle:
// a signed trust-bundle rotation (and optional broadcast revocation)
// begins mid-collection and rolls out in staged waves while the query is
// in flight. The grace window keeps both epochs serving until the rollout
// completes; the run reports how many stale deposits were retried and
// which devices stayed expelled.
//
// The -ssi-adversary flag upgrades the threat model from honest-but-curious
// to weakly malicious: the SSI itself misbehaves on schedule (dropping,
// duplicating, replaying or equivocating ciphertext, forging coverage
// claims). Verified execution (-verify, on by default) checks the SSI
// against the fleet's k2-keyed deposit commitments and either recovers the
// honest result or fails with a typed detection error — never a silently
// wrong answer. -ssi-persistent re-strikes on quarantine retries, forcing
// the degradation path.
//
// Observability flags:
//
//	-trace-out q.jsonl    write the query's span tree (simulated-clock
//	                      timestamps, per-device events) as JSON lines
//	-trace-summary        render the span tree as an ASCII summary
//	-trace-sample 0.01    deterministic per-device trace sampling with
//	                      per-wave rollup spans (fleet-scale traces)
//	-metrics-out m.prom   write the engine's metrics registry in
//	                      Prometheus text format
//	-journal-out q.jsonl  write the structured query journal as JSON lines
//	-ops-addr :8080       serve /metrics, /healthz, /traces/<id>, /journal
//	-pprof localhost:6060 serve net/http/pprof for CPU/heap profiling
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/faultplan"
	"github.com/trustedcells/tcq/internal/obs"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/ssi"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/workload"
)

// distinct counts unique strings.
func distinct(xs []string) int {
	set := map[string]bool{}
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

const defaultQuery = `SELECT C.district, AVG(P.cons) FROM Power P, Consumer C ` +
	`WHERE C.accommodation = 'detached house' AND C.cid = P.cid ` +
	`GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 2`

// options is everything one tdsnet invocation configures.
type options struct {
	fleet       int
	protoName   string
	query       string
	nf          int
	buckets     int
	available   float64
	failure     float64
	audit       int
	compromised float64
	seed        int64
	timeout     time.Duration

	churnOffline  float64
	churnDrop     float64
	churnCorrupt  float64
	churnSlow     float64
	churnCrash    float64
	faultSeed     int64
	coverageFloor float64

	ssiAdversary  string
	ssiPersistent bool
	verify        bool
	pipeline      string

	rotateEvery int
	rotateWaves int
	revokeIDs   string

	concurrent int
	inflight   int

	traceOut     string
	traceSummary bool
	metricsOut   string
	journalOut   string
	traceSample  float64
	opsAddr      string
	pprofAddr    string
}

// faultPlan assembles the scripted churn and SSI misbehavior, or nil when
// no fault flag is set.
func (o options) faultPlan() (*faultplan.Plan, error) {
	script, err := parseSSIScript(o.ssiAdversary, o.ssiPersistent)
	if err != nil {
		return nil, err
	}
	rot := o.rotationScript()
	if o.churnOffline == 0 && o.churnDrop == 0 && o.churnCorrupt == 0 &&
		o.churnSlow == 0 && o.churnCrash == 0 && o.coverageFloor == 0 &&
		script == nil && rot == nil {
		return nil, nil
	}
	return &faultplan.Plan{
		Seed:            o.faultSeed,
		OfflineFraction: o.churnOffline,
		DropFraction:    o.churnDrop,
		CorruptFraction: o.churnCorrupt,
		SlowFraction:    o.churnSlow,
		CrashFraction:   o.churnCrash,
		CoverageFloor:   o.coverageFloor,
		SSI:             script,
		Rotation:        rot,
	}, nil
}

// rotationScript turns the -rotate-every/-rotate-waves/-revoke-ids flags
// into a live-rotation script, or nil when none is set. -revoke-ids
// without -rotate-every revokes at the first committed deposit and
// applies the whole rollout at once.
func (o options) rotationScript() *faultplan.RotationScript {
	var ids []string
	for _, id := range strings.Split(o.revokeIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if o.rotateEvery <= 0 && len(ids) == 0 {
		return nil
	}
	after := o.rotateEvery
	if after <= 0 {
		after = 1
	}
	return &faultplan.RotationScript{
		AfterDeposits: after,
		Waves:         o.rotateWaves,
		WaveEvery:     o.rotateEvery,
		Revoke:        ids,
	}
}

// parseSSIScript turns the -ssi-adversary flag's comma-separated behavior
// list into a script, or nil when the flag is empty.
func parseSSIScript(list string, persistent bool) (*faultplan.SSIScript, error) {
	if list == "" {
		return nil, nil
	}
	known := faultplan.SSIMisbehaviors()
	var bs []faultplan.SSIMisbehavior
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, b := range known {
			if string(b) == name {
				bs = append(bs, b)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown SSI misbehavior %q (known: %v)", name, known)
		}
	}
	if len(bs) == 0 {
		return nil, nil
	}
	return &faultplan.SSIScript{Behaviors: bs, Persistent: persistent}, nil
}

func main() {
	var o options
	flag.IntVar(&o.fleet, "fleet", 200, "number of TDSs (smart meters)")
	flag.StringVar(&o.protoName, "protocol", "s_agg", "basic | s_agg | rnf_noise | c_noise | ed_hist")
	flag.StringVar(&o.query, "query", defaultQuery, "SQL query to execute")
	flag.IntVar(&o.nf, "nf", 2, "Rnf_Noise: fake tuples per true tuple")
	flag.IntVar(&o.buckets, "buckets", 0, "ED_Hist: histogram buckets (0 = derive from h=5)")
	flag.Float64Var(&o.available, "available", 0.10, "fraction of the fleet connected for aggregation")
	flag.Float64Var(&o.failure, "failure", 0, "probability a TDS dies mid-partition")
	flag.IntVar(&o.audit, "audit", 1, "audit replicas per partition (compromised-TDS extension)")
	flag.Float64Var(&o.compromised, "compromised", 0, "fraction of the fleet marked compromised")
	flag.Int64Var(&o.seed, "seed", 42, "RNG seed")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock bound on the whole run (0 = none)")
	flag.Float64Var(&o.churnOffline, "churn-offline", 0, "fraction of devices offline for the whole query")
	flag.Float64Var(&o.churnDrop, "churn-drop", 0, "fraction of devices that vanish mid-deposit")
	flag.Float64Var(&o.churnCorrupt, "churn-corrupt", 0, "fraction of deposits arriving corrupted")
	flag.Float64Var(&o.churnSlow, "churn-slow", 0, "fraction of devices with inflated connection latency")
	flag.Float64Var(&o.churnCrash, "churn-crash", 0, "fraction of devices crashing before committing a partition")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed of the scripted churn")
	flag.Float64Var(&o.coverageFloor, "coverage-floor", 0, "fail the query below this collection coverage ratio")
	flag.StringVar(&o.ssiAdversary, "ssi-adversary", "",
		"comma-separated SSI misbehaviors to script (drop-tuple, duplicate-tuple, replay-stale-partition, forge-coverage, equivocate-partitioning)")
	flag.BoolVar(&o.ssiPersistent, "ssi-persistent", false,
		"re-strike scripted SSI misbehaviors on every opportunity, including quarantine retries")
	flag.BoolVar(&o.verify, "verify", true,
		"verify the SSI against the fleet's deposit commitments (disable to isolate protocol cost)")
	flag.StringVar(&o.pipeline, "pipeline", "off",
		"streaming pipeline mode: off | auto | full (overlap collection with the first aggregation step)")
	flag.IntVar(&o.rotateEvery, "rotate-every", 0,
		"begin a live key rotation after N committed deposits and advance one rollout wave every further N (0 = no rotation)")
	flag.IntVar(&o.rotateWaves, "rotate-waves", 3,
		"staged-rollout wave count for -rotate-every / -revoke-ids")
	flag.StringVar(&o.revokeIDs, "revoke-ids", "",
		"comma-separated device IDs (e.g. tds-00007) revoked at the rotation point")
	flag.IntVar(&o.concurrent, "concurrent", 1,
		"run the query N times at once through the multi-tenant server (N > 1)")
	flag.IntVar(&o.inflight, "inflight", 0,
		"concurrent: server MaxInFlight (0 = GOMAXPROCS)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the query trace as JSON lines to this file")
	flag.BoolVar(&o.traceSummary, "trace-summary", false, "print the query trace as an ASCII span tree")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write the metrics registry (Prometheus text) to this file")
	flag.StringVar(&o.journalOut, "journal-out", "", "write the structured query journal (JSON lines) to this file")
	flag.Float64Var(&o.traceSample, "trace-sample", 0,
		"deterministic per-device trace sampling rate in (0,1); 0 or >=1 traces every device")
	flag.StringVar(&o.opsAddr, "ops-addr", "",
		"serve the ops endpoint (/metrics, /healthz, /traces/<id>, /journal) on this address")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if err := runOpts(o); err != nil {
		fmt.Fprintln(os.Stderr, "tdsnet:", err)
		os.Exit(1)
	}
}

func parseProtocol(name string) (protocol.Kind, error) {
	switch strings.ToLower(name) {
	case "basic":
		return protocol.KindBasic, nil
	case "s_agg", "sagg":
		return protocol.KindSAgg, nil
	case "rnf_noise", "rnf":
		return protocol.KindRnfNoise, nil
	case "c_noise", "cnoise":
		return protocol.KindCNoise, nil
	case "ed_hist", "edhist", "hist":
		return protocol.KindEDHist, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}

// run keeps the original signature for the basic scenarios.
func run(fleet int, protoName, query string, nf, buckets int, available, failure float64, seed int64) error {
	return runExt(fleet, protoName, query, nf, buckets, available, failure, 1, 0, seed)
}

func runExt(fleet int, protoName, query string, nf, buckets int, available, failure float64, audit int, compromised float64, seed int64) error {
	return runOpts(options{fleet: fleet, protoName: protoName, query: query,
		nf: nf, buckets: buckets, available: available, failure: failure,
		audit: audit, compromised: compromised, seed: seed, verify: true})
}

func runOpts(o options) error {
	kind, err := parseProtocol(o.protoName)
	if err != nil {
		return err
	}
	pipeMode, err := core.ParsePipelineMode(o.pipeline)
	if err != nil {
		return err
	}
	if o.pprofAddr != "" {
		// net/http/pprof registers its handlers on DefaultServeMux; the
		// server lives for the remainder of the process.
		go func() {
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tdsnet: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", o.pprofAddr)
	}
	w := workload.DefaultSmartMeter(o.seed)
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
			{Role: "auditor"},
		}},
		AuthorityKey:        tdscrypto.DeriveKey(tdscrypto.Key{}, "authority"),
		MasterKey:           tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction:   o.available,
		FailureRate:         o.failure,
		AuditReplicas:       o.audit,
		CompromisedFraction: o.compromised,
		Seed:                o.seed,
		TraceSampleRate:     o.traceSample,
	})
	if err != nil {
		return err
	}
	if err := eng.ProvisionFleet(o.fleet, w.HouseholdDB); err != nil {
		return err
	}
	cred := eng.Authority().Issue("distribution-co", []string{"energy-analyst", "auditor"},
		time.Unix(1700000000, 0).Add(365*24*time.Hour))
	q, err := querier.New("distribution-co", eng.K1(), cred, eng.Schema())
	if err != nil {
		return err
	}

	plan, err := o.faultPlan()
	if err != nil {
		return err
	}
	fmt.Printf("fleet=%d protocol=%v available=%.0f%% failure=%.0f%%\n",
		o.fleet, kind, o.available*100, o.failure*100)
	if plan != nil {
		fmt.Printf("churn: offline=%.0f%% drop=%.0f%% corrupt=%.0f%% slow=%.0f%% crash=%.0f%% (fault seed %d)\n",
			plan.OfflineFraction*100, plan.DropFraction*100, plan.CorruptFraction*100,
			plan.SlowFraction*100, plan.CrashFraction*100, plan.Seed)
		if plan.SSI != nil {
			fmt.Printf("SSI adversary: %v (persistent=%v)\n", plan.SSI.Behaviors, plan.SSI.Persistent)
		}
		if rot := plan.Rotation; rot != nil {
			fmt.Printf("live rotation: after %d deposits, %d waves (one per %d further commits), revoking %d device(s)\n",
				rot.AfterDeposits, rot.Waves, rot.WaveEvery, len(rot.Revoke))
		}
	}
	fmt.Println("query:", o.query)

	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if o.concurrent > 1 {
		return runConcurrent(ctx, o, eng, q, kind, plan)
	}
	if o.opsAddr != "" {
		// A single-shot run has no server retention; the endpoint serves
		// the registry for the remainder of the process.
		startOps(o.opsAddr, obs.OpsSource{Registry: eng.Registry()})
	}

	start := time.Now()
	resp, err := eng.Execute(ctx, core.Request{
		Querier:    q,
		SQL:        o.query,
		Kind:       kind,
		Params:     protocol.Params{Nf: o.nf, NumBuckets: o.buckets},
		Faults:     plan,
		SkipVerify: !o.verify,
		Pipeline:   pipeMode,
	})
	if err != nil {
		// An abort after execution started still carries metrics, ledger
		// and trace: report the detection before failing, and export the
		// requested artifacts so the abort is auditable.
		if resp != nil {
			printAbort(resp, err)
			if expErr := exportObservability(o, eng, resp); expErr != nil {
				fmt.Fprintln(os.Stderr, "tdsnet:", expErr)
			}
		}
		return err
	}
	res, m := resp.Result, resp.Metrics
	fmt.Printf("\n%s\n", res)
	fmt.Printf("rows: %d (wall clock %v)\n\n", len(res.Rows), time.Since(start).Round(time.Millisecond))
	fmt.Println("simulated metrics (calibrated hardware model):")
	fmt.Printf("  N_t (tuples collected)     %d  (true: %d)\n", m.Nt, m.TrueTuples)
	fmt.Printf("  P_TDS (participations)     %d\n", m.PTDS)
	fmt.Printf("  Load_Q                     %.1f KB\n", float64(m.LoadBytes)/1e3)
	fmt.Printf("  T_Q (agg+filter makespan)  %v\n", m.TQ)
	fmt.Printf("  T_local (mean busy/TDS)    %v\n", m.TLocal)
	fmt.Printf("  reassignments after death  %d\n", m.Reassignments)
	fmt.Printf("  coverage                   %.1f%% (%d of %d eligible TDSs deposited)\n",
		m.CoverageRatio*100, m.DepositedDevices, m.EligibleDevices)
	if plan != nil {
		fmt.Printf("  churn: offline %d, dropped %d, corrupt %d, timeouts %d, abandoned %d\n",
			m.OfflineDevices, m.DroppedDeposits, m.CorruptDeposits, m.Timeouts, m.PartitionsAbandoned)
		fmt.Printf("  recovery wait (timeouts+backoff)  %v across %d ledger entries\n",
			m.RetryWait, len(m.Ledger))
		if plan.Rotation != nil {
			printRotationReport(eng, m.Ledger)
		}
		printRecoveryReport(m.Ledger)
	}
	if o.audit > 1 {
		fmt.Printf("  audit: replicas outvoted   %d (suspects: %d distinct)\n",
			m.AuditDetections, distinct(m.Suspects))
	}
	fmt.Printf("\nhonest-but-curious SSI ledger:\n")
	fmt.Printf("  tuples seen   %d (tagged: %d)\n", m.Observation.TotalTuples, m.Observation.TaggedTuples)
	fmt.Printf("  distinct tags %d\n", len(m.Observation.TagCounts))
	fmt.Printf("  bytes seen    %.1f KB (all ciphertext)\n", float64(m.Observation.BytesSeen)/1e3)
	printIntegrity(resp.Integrity)
	if p := resp.Pipeline; p != nil && p.Active {
		fmt.Printf("\nstreaming pipeline (%s): %d windows speculated, %d adopted, %d wasted\n",
			p.Mode, p.Speculated, p.Adopted, p.Wasted)
	}
	if resp.Conformance != nil {
		fmt.Printf("\n%s", resp.Conformance)
	}

	return exportObservability(o, eng, resp)
}

// runConcurrent is the -concurrent N mode: the same query N times at
// once through a core.Server over the one fleet — the multi-tenant
// deployment shape, where the SSI serves many queriers and each device
// connection answers every pending querybox. Reports wall-clock
// throughput and the exact simulated-latency quantiles; with fixed seeds
// every per-query simulated metric is identical to a solo run's.
func runConcurrent(ctx context.Context, o options, eng *core.Engine,
	q *querier.Querier, kind protocol.Kind, plan *faultplan.Plan) error {
	inflight := o.inflight
	if inflight <= 0 {
		inflight = runtime.GOMAXPROCS(0)
	}
	srv := core.NewServer(eng, core.ServerConfig{
		MaxInFlight: inflight, QueueDepth: o.concurrent})
	defer srv.Close()
	if o.opsAddr != "" {
		startOps(o.opsAddr, obs.OpsSource{
			Registry: eng.Registry(),
			Health: func() any {
				return struct {
					Server  core.ServerStats   `json:"server"`
					Tenants []core.TenantStats `json:"tenants"`
				}{srv.Stats(), srv.TenantStats()}
			},
			Trace:    srv.TraceFor,
			Journals: srv.RecentJournals,
		})
	}
	fmt.Printf("multi-tenant: %d queries, %d in flight\n\n", o.concurrent, inflight)

	latencies := make([]float64, o.concurrent)
	errs := make([]error, o.concurrent)
	var rows int
	var wg sync.WaitGroup
	pipeMode, _ := core.ParsePipelineMode(o.pipeline) // validated in runOpts
	start := time.Now()
	for i := 0; i < o.concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Submit(ctx, core.Request{
				Querier: q, SQL: o.query, Kind: kind,
				Params:     protocol.Params{Nf: o.nf, NumBuckets: o.buckets},
				QueryID:    fmt.Sprintf("cc-%04d", i),
				Faults:     plan,
				SkipVerify: !o.verify,
				Pipeline:   pipeMode,
			})
			if err != nil {
				errs[i] = err
				return
			}
			latencies[i] = resp.Metrics.TQ.Seconds() * 1e3
			if i == 0 {
				rows = len(resp.Result.Rows)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query cc-%04d: %w", i, err)
		}
	}
	st := srv.Stats()
	fmt.Printf("rows per query     %d\n", rows)
	fmt.Printf("wall clock         %v (%.1f queries/sec)\n",
		wall.Round(time.Millisecond), float64(o.concurrent)/wall.Seconds())
	fmt.Printf("simulated latency  p50 %.2fms  p99 %.2fms (T_Q per query)\n",
		obs.Quantile(latencies, 0.50), obs.Quantile(latencies, 0.99))
	fmt.Printf("server             admitted %d, completed %d, rejected %d\n",
		st.Admitted, st.Completed, st.Rejected)
	for _, ts := range srv.TenantStats() {
		fmt.Printf("tenant %-14s completed %d  sim T_Q p50 %v p99 %v  queue wait p50 %v p99 %v\n",
			ts.Querier, ts.Completed, ts.SimTQP50, ts.SimTQP99, ts.QueueWaitP50, ts.QueueWaitP99)
	}
	return nil
}

// startOps serves the read-only ops endpoint for the remainder of the
// process, pprof-style.
func startOps(addr string, src obs.OpsSource) {
	h := obs.ServeOps(src)
	go func() {
		if err := http.ListenAndServe(addr, h); err != nil {
			fmt.Fprintln(os.Stderr, "tdsnet: ops:", err)
		}
	}()
	fmt.Printf("ops: http://%s/metrics\n", addr)
}

// printIntegrity renders the verified-execution report, or notes that
// verification was off.
func printIntegrity(rep *core.IntegrityReport) {
	if rep == nil {
		fmt.Printf("\nverified execution: off (-verify=false)\n")
		return
	}
	fmt.Printf("\nverified execution:\n")
	fmt.Printf("  checks        %d (%d deposit commitments, %d partition builds)\n",
		rep.Checks, rep.Deposits, rep.Phases)
	fmt.Printf("  violations    %d (quarantined %d, recovered %d)\n",
		rep.Violations, rep.Quarantines, rep.Recovered)
	fmt.Printf("  run digest    %x\n", rep.Digest)
}

// printAbort reports a run that failed after execution started: the typed
// error, the detection account, and the ledger tail that explains it.
func printAbort(resp *core.Response, err error) {
	fmt.Printf("\nquery aborted: %v\n", err)
	if m := resp.Metrics; m != nil {
		fmt.Printf("  coverage at abort  %.1f%% (%d of %d eligible TDSs deposited)\n",
			m.CoverageRatio*100, m.DepositedDevices, m.EligibleDevices)
		printRecoveryReport(m.Ledger)
	}
	printIntegrity(resp.Integrity)
}

// printRotationReport summarizes the live-rotation account of one run:
// how far the staged rollout got, how many stale-epoch deposits the grace
// machinery had to absorb, and which devices stayed expelled.
func printRotationReport(eng *core.Engine, ledger []ssi.LedgerEntry) {
	var begun, waves, stale, revokedDeps int
	for _, le := range ledger {
		switch le.Kind {
		case "rotation-begin":
			begun++
		case "rotation-wave":
			waves++
		case "deposit-stale":
			stale++
		case "deposit-revoked":
			revokedDeps++
		}
	}
	fmt.Printf("  rotation: begun %d, waves applied %d, stale deposits retried %d, revoked deposits rejected %d\n",
		begun, waves, stale, revokedDeps)
	if revoked := eng.RevokedDevices(); len(revoked) > 0 {
		fmt.Printf("  revoked devices: %s\n", strings.Join(revoked, ", "))
	}
}

// maxLedgerLines bounds the recovery report; churned thousand-device
// fleets produce more entries than a terminal wants to scroll.
const maxLedgerLines = 12

// printRecoveryReport lists the ledger entries with their simulated
// offsets from the query's origin, so recovery timing is auditable at a
// glance.
func printRecoveryReport(ledger []ssi.LedgerEntry) {
	if len(ledger) == 0 {
		return
	}
	fmt.Println("  recovery ledger (simulated offsets):")
	n := len(ledger)
	if n > maxLedgerLines {
		n = maxLedgerLines
	}
	for _, le := range ledger[:n] {
		off := le.At.Sub(obs.SimOrigin())
		fmt.Printf("    +%-12v %-20s %-12s device=%s attempt=%d wait=%v\n",
			off, le.Kind, le.Phase, le.Device, le.Attempt, le.Wait)
	}
	if len(ledger) > n {
		fmt.Printf("    … and %d more entries\n", len(ledger)-n)
	}
}

// exportObservability writes the trace and metrics artifacts the flags
// requested.
func exportObservability(o options, eng *core.Engine, resp *core.Response) error {
	if o.traceSummary && resp.Trace != nil {
		fmt.Printf("\nquery trace (simulated clock):\n%s", resp.Trace.Summary())
	}
	if o.traceOut != "" {
		if resp.Trace == nil {
			return fmt.Errorf("no trace to write to %s", o.traceOut)
		}
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := resp.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s\n", o.traceOut)
	}
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return err
		}
		if err := eng.Registry().WriteText(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s\n", o.metricsOut)
	}
	if o.journalOut != "" {
		if resp.Journal == nil {
			return fmt.Errorf("no journal to write to %s", o.journalOut)
		}
		f, err := os.Create(o.journalOut)
		if err != nil {
			return err
		}
		if err := resp.Journal.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("journal: wrote %s\n", o.journalOut)
	}
	return nil
}
