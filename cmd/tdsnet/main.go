// Command tdsnet runs a privacy-preserving query end-to-end over an
// in-process fleet of Trusted Data Servers: collection, aggregation and
// filtering phases through an honest-but-curious SSI, with simulated-time
// metrics from the calibrated hardware model.
//
// Usage:
//
//	tdsnet -fleet 200 -protocol s_agg \
//	   -query "SELECT C.district, AVG(P.cons) FROM Power P, Consumer C
//	           WHERE C.cid = P.cid GROUP BY C.district"
//
// Protocols: basic, s_agg, rnf_noise, c_noise, ed_hist.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/trustedcells/tcq/internal/accessctl"
	"github.com/trustedcells/tcq/internal/core"
	"github.com/trustedcells/tcq/internal/protocol"
	"github.com/trustedcells/tcq/internal/querier"
	"github.com/trustedcells/tcq/internal/tdscrypto"
	"github.com/trustedcells/tcq/internal/workload"
)

// distinct counts unique strings.
func distinct(xs []string) int {
	set := map[string]bool{}
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

const defaultQuery = `SELECT C.district, AVG(P.cons) FROM Power P, Consumer C ` +
	`WHERE C.accommodation = 'detached house' AND C.cid = P.cid ` +
	`GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 2`

func main() {
	var (
		fleet     = flag.Int("fleet", 200, "number of TDSs (smart meters)")
		protoName = flag.String("protocol", "s_agg", "basic | s_agg | rnf_noise | c_noise | ed_hist")
		query     = flag.String("query", defaultQuery, "SQL query to execute")
		nf        = flag.Int("nf", 2, "Rnf_Noise: fake tuples per true tuple")
		buckets   = flag.Int("buckets", 0, "ED_Hist: histogram buckets (0 = derive from h=5)")
		available = flag.Float64("available", 0.10, "fraction of the fleet connected for aggregation")
		failure   = flag.Float64("failure", 0, "probability a TDS dies mid-partition")
		audit     = flag.Int("audit", 1, "audit replicas per partition (compromised-TDS extension)")
		bad       = flag.Float64("compromised", 0, "fraction of the fleet marked compromised")
		seed      = flag.Int64("seed", 42, "RNG seed")
	)
	flag.Parse()
	if err := runExt(*fleet, *protoName, *query, *nf, *buckets, *available, *failure, *audit, *bad, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tdsnet:", err)
		os.Exit(1)
	}
}

func parseProtocol(name string) (protocol.Kind, error) {
	switch strings.ToLower(name) {
	case "basic":
		return protocol.KindBasic, nil
	case "s_agg", "sagg":
		return protocol.KindSAgg, nil
	case "rnf_noise", "rnf":
		return protocol.KindRnfNoise, nil
	case "c_noise", "cnoise":
		return protocol.KindCNoise, nil
	case "ed_hist", "edhist", "hist":
		return protocol.KindEDHist, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}

// run keeps the original signature for the basic scenarios.
func run(fleet int, protoName, query string, nf, buckets int, available, failure float64, seed int64) error {
	return runExt(fleet, protoName, query, nf, buckets, available, failure, 1, 0, seed)
}

func runExt(fleet int, protoName, query string, nf, buckets int, available, failure float64, audit int, compromised float64, seed int64) error {
	kind, err := parseProtocol(protoName)
	if err != nil {
		return err
	}
	w := workload.DefaultSmartMeter(seed)
	eng, err := core.NewEngine(core.Config{
		Schema: w.Schema(),
		Policy: &accessctl.Policy{Rules: []accessctl.Rule{
			{Role: "energy-analyst", AggregateOnly: true},
			{Role: "auditor"},
		}},
		AuthorityKey:        tdscrypto.DeriveKey(tdscrypto.Key{}, "authority"),
		MasterKey:           tdscrypto.DeriveKey(tdscrypto.Key{}, "master"),
		AvailableFraction:   available,
		FailureRate:         failure,
		AuditReplicas:       audit,
		CompromisedFraction: compromised,
		Seed:                seed,
	})
	if err != nil {
		return err
	}
	if err := eng.ProvisionFleet(fleet, w.HouseholdDB); err != nil {
		return err
	}
	cred := eng.Authority().Issue("distribution-co", []string{"energy-analyst", "auditor"},
		time.Unix(1700000000, 0).Add(365*24*time.Hour))
	q, err := querier.New("distribution-co", eng.K1(), cred, eng.Schema())
	if err != nil {
		return err
	}

	fmt.Printf("fleet=%d protocol=%v available=%.0f%% failure=%.0f%%\n",
		fleet, kind, available*100, failure*100)
	fmt.Println("query:", query)

	start := time.Now()
	res, m, err := eng.Run(q, query, kind, protocol.Params{Nf: nf, NumBuckets: buckets})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", res)
	fmt.Printf("rows: %d (wall clock %v)\n\n", len(res.Rows), time.Since(start).Round(time.Millisecond))
	fmt.Println("simulated metrics (calibrated hardware model):")
	fmt.Printf("  N_t (tuples collected)     %d  (true: %d)\n", m.Nt, m.TrueTuples)
	fmt.Printf("  P_TDS (participations)     %d\n", m.PTDS)
	fmt.Printf("  Load_Q                     %.1f KB\n", float64(m.LoadBytes)/1e3)
	fmt.Printf("  T_Q (agg+filter makespan)  %v\n", m.TQ)
	fmt.Printf("  T_local (mean busy/TDS)    %v\n", m.TLocal)
	fmt.Printf("  reassignments after death  %d\n", m.Reassignments)
	if audit > 1 {
		fmt.Printf("  audit: replicas outvoted   %d (suspects: %d distinct)\n",
			m.AuditDetections, distinct(m.Suspects))
	}
	fmt.Printf("\nhonest-but-curious SSI ledger:\n")
	fmt.Printf("  tuples seen   %d (tagged: %d)\n", m.Observation.TotalTuples, m.Observation.TaggedTuples)
	fmt.Printf("  distinct tags %d\n", len(m.Observation.TagCounts))
	fmt.Printf("  bytes seen    %.1f KB (all ciphertext)\n", float64(m.Observation.BytesSeen)/1e3)
	return nil
}
